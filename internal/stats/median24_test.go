package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestMedianNet24 pins the comparator network to the sort-based median on
// adversarial 24-element inputs: random values, heavy ties, signed zeros,
// sorted and reverse-sorted runs, and random-walk shapes like the EMD
// cumulative differences that feed it in production.
func TestMedianNet24(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(24))
	ref := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return (s[11] + s[12]) / 2
	}
	check := func(xs []float64) {
		t.Helper()
		want := ref(xs)
		got := medianNet24(append([]float64(nil), xs...))
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("medianNet24(%v) = %v, want %v", xs, got, want)
		}
	}
	xs := make([]float64, 24)
	for trial := 0; trial < 20000; trial++ {
		switch trial % 5 {
		case 0: // uniform random
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
		case 1: // heavy ties from a tiny alphabet, including -0
			vals := []float64{-1, math.Copysign(0, -1), 0, 0.5, 2}
			for i := range xs {
				xs[i] = vals[rng.Intn(len(vals))]
			}
		case 2: // sorted ascending with duplicates
			v := rng.Float64()
			for i := range xs {
				xs[i] = v
				if rng.Intn(3) > 0 {
					v += rng.Float64()
				}
			}
		case 3: // reverse sorted
			v := rng.Float64()
			for i := range xs {
				xs[i] = v
				v -= rng.Float64()
			}
		case 4: // random walk, the production shape
			v := 0.0
			for i := range xs {
				v += rng.NormFloat64() * 0.1
				xs[i] = v
			}
		}
		check(xs)
	}
}

func BenchmarkMedianNet24(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 24)
	tmp := make([]float64, 24)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(tmp, xs)
		_ = medianNet24(tmp)
	}
}
