package onion

import (
	"crypto/ecdh"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"sync"
)

// relayCircuit is a relay's view of one circuit passing through it.
type relayCircuit struct {
	id   uint32 // circuit ID on the inbound (client-side) link
	prev string // node the circuit arrives from

	next     string // node the circuit continues to (if extended)
	nextCirc uint32 // circuit ID on the outbound link

	keys *hopKeys // negotiated with the circuit originator

	// spliceTo, when non-zero, joins this circuit to another circuit on
	// the same relay (rendezvous point behaviour).
	spliceTo uint32

	// streams tracks exit-side connections to external destinations.
	streams map[uint16]net.Conn
}

// Relay is one onion router: it decrypts/encrypts its layer, extends
// circuits, acts as exit for external destinations, and plays the three
// hidden-service roles (intro point, HSDir, rendezvous point) on demand.
type Relay struct {
	id    string
	net   *Network
	inbox chan Cell

	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup

	mu sync.Mutex
	// circuits is keyed by inbound circuit ID.
	circuits map[uint32]*relayCircuit
	// byNextCirc indexes circuits by their outbound circuit ID, for
	// backward traffic.
	byNextCirc map[uint32]uint32
	// pendingExtend maps an outbound CREATE's circuit ID to the inbound
	// circuit waiting for the CREATED.
	pendingExtend map[uint32]uint32
	// introServices maps onion address -> inbound circuit ID of the
	// service's intro circuit.
	introServices map[string]uint32
	// rendezvous maps cookie (hex) -> inbound circuit ID of the client's
	// rendezvous circuit.
	rendezvous map[string]uint32
	// hsStore is the relay's slice of the hidden-service directory.
	hsStore map[string]*Descriptor
	// spliceObserver, when set, receives a copy of every DATA body this
	// relay splices as a rendezvous point — a diagnostic hook modelling a
	// curious/malicious RP. End-to-end encryption is what keeps this
	// vantage point blind.
	spliceObserver func([]byte)
}

var _ node = (*Relay)(nil)

func newRelay(n *Network, id string) (*Relay, error) {
	if id == "" {
		return nil, fmt.Errorf("onion: relay needs a non-empty ID")
	}
	return &Relay{
		id:            id,
		net:           n,
		inbox:         make(chan Cell, inboxSize),
		done:          make(chan struct{}),
		circuits:      make(map[uint32]*relayCircuit),
		byNextCirc:    make(map[uint32]uint32),
		pendingExtend: make(map[uint32]uint32),
		introServices: make(map[string]uint32),
		rendezvous:    make(map[string]uint32),
		hsStore:       make(map[string]*Descriptor),
	}, nil
}

// ID implements node.
func (r *Relay) ID() string { return r.id }

// deliver implements node.
func (r *Relay) deliver(c Cell) {
	select {
	case r.inbox <- c:
	case <-r.done:
	}
}

func (r *Relay) start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			select {
			case c := <-r.inbox:
				r.handleCell(c)
			case <-r.done:
				return
			}
		}
	}()
}

// stop halts the relay's processing loop and closes exit connections.
func (r *Relay) stop() {
	r.stopOnce.Do(func() {
		close(r.done)
	})
	// Close exit streams first: the per-stream pump goroutines block on
	// reads from these connections and must be released before Wait.
	r.mu.Lock()
	var conns []net.Conn
	for _, rc := range r.circuits {
		for _, conn := range rc.streams {
			conns = append(conns, conn)
		}
	}
	r.mu.Unlock()
	for _, conn := range conns {
		_ = conn.Close()
	}
	r.wg.Wait()
}

// SetSpliceObserver installs a hook receiving every spliced DATA body
// (malicious rendezvous-point model; see spliceObserver).
func (r *Relay) SetSpliceObserver(fn func([]byte)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spliceObserver = fn
}

// StoreDescriptor saves a hidden-service descriptor (HSDir role). The
// descriptor is verified before storage.
func (r *Relay) StoreDescriptor(d *Descriptor) error {
	if err := d.Verify(); err != nil {
		return fmt.Errorf("onion: HSDir %s rejects descriptor: %w", r.id, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hsStore[d.Onion] = d.clone()
	return nil
}

// FetchDescriptor retrieves a stored descriptor (HSDir role).
func (r *Relay) FetchDescriptor(onion string) (*Descriptor, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.hsStore[onion]
	if !ok {
		return nil, fmt.Errorf("onion: HSDir %s has no descriptor for %q", r.id, onion)
	}
	return d.clone(), nil
}

func (r *Relay) handleCell(c Cell) {
	switch c.Cmd {
	case CmdCreate:
		r.handleCreate(c)
	case CmdCreated:
		r.handleCreated(c)
	case CmdRelay:
		r.handleRelay(c)
	case CmdDestroy:
		r.handleDestroy(c)
	}
}

// handleCreate negotiates hop keys with the circuit originator.
func (r *Relay) handleCreate(c Cell) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return
	}
	keys, err := deriveHopKeys(priv, c.Payload)
	if err != nil {
		return
	}
	rc := &relayCircuit{
		id:      c.Circ,
		prev:    c.From,
		keys:    keys,
		streams: make(map[uint16]net.Conn),
	}
	r.mu.Lock()
	r.circuits[c.Circ] = rc
	r.mu.Unlock()
	r.net.send(c.From, Cell{
		Circ:    c.Circ,
		Cmd:     CmdCreated,
		From:    r.id,
		Payload: priv.PublicKey().Bytes(),
	})
}

// handleCreated completes an extension this relay initiated on behalf of a
// circuit: it forwards the new hop's public key backward as EXTENDED.
func (r *Relay) handleCreated(c Cell) {
	r.mu.Lock()
	inbound, ok := r.pendingExtend[c.Circ]
	if ok {
		delete(r.pendingExtend, c.Circ)
	}
	rc := r.circuits[inbound]
	r.mu.Unlock()
	if !ok || rc == nil {
		return
	}
	r.sendBackward(rc, relayMsg{Cmd: relayExtended, Body: c.Payload})
}

// handleRelay processes an onion-encrypted relay cell, in either direction.
func (r *Relay) handleRelay(c Cell) {
	r.mu.Lock()
	// Forward direction: the cell arrives on the inbound link.
	rc, forward := r.circuits[c.Circ]
	if forward && rc.prev != c.From {
		forward = false
	}
	var backCirc *relayCircuit
	if !forward {
		if inbound, ok := r.byNextCirc[c.Circ]; ok {
			backCirc = r.circuits[inbound]
		}
	}
	r.mu.Unlock()

	switch {
	case forward:
		r.handleForward(rc, c)
	case backCirc != nil && backCirc.next == c.From:
		// Backward direction: wrap our layer and pass toward the client.
		payload, err := sealLayer(backCirc.keys.bwdEnc, backCirc.keys.bwdMAC,
			append([]byte{flagForward}, c.Payload...))
		if err != nil {
			return
		}
		r.net.send(backCirc.prev, Cell{Circ: backCirc.id, Cmd: CmdRelay, From: r.id, Payload: payload})
	}
}

// handleForward unwraps this relay's layer of a forward cell and either
// relays it to the next hop or executes the contained command.
func (r *Relay) handleForward(rc *relayCircuit, c Cell) {
	plain, err := openLayer(rc.keys.fwdEnc, rc.keys.fwdMAC, c.Payload)
	if err != nil || len(plain) == 0 {
		return
	}
	flag, rest := plain[0], plain[1:]
	if flag == flagForward {
		r.mu.Lock()
		next, nextCirc := rc.next, rc.nextCirc
		r.mu.Unlock()
		if next == "" {
			return
		}
		r.net.send(next, Cell{Circ: nextCirc, Cmd: CmdRelay, From: r.id, Payload: rest})
		return
	}
	msg, err := decodeRelayMsg(rest)
	if err != nil {
		return
	}
	r.execute(rc, msg)
}

// execute runs a relay command addressed to this relay.
func (r *Relay) execute(rc *relayCircuit, msg relayMsg) {
	// Rendezvous-point role: once two circuits are spliced, every
	// stream-level command crossing this endpoint is re-originated on the
	// other leg instead of being executed here.
	r.mu.Lock()
	var spliced *relayCircuit
	if rc.spliceTo != 0 {
		spliced = r.circuits[rc.spliceTo]
	}
	r.mu.Unlock()
	if spliced != nil {
		switch msg.Cmd {
		case relayBegin, relayData, relayEnd, relayConnected:
			if msg.Cmd == relayData {
				r.mu.Lock()
				observer := r.spliceObserver
				r.mu.Unlock()
				if observer != nil {
					observer(append([]byte(nil), msg.Body...))
				}
			}
			r.sendBackward(spliced, msg)
			return
		}
	}
	switch msg.Cmd {
	case relayExtend:
		r.execExtend(rc, msg)
	case relayBegin:
		r.execBegin(rc, msg)
	case relayData:
		r.execData(rc, msg)
	case relayEnd:
		r.execEnd(rc, msg)
	case relayEstablishIntro:
		r.execEstablishIntro(rc, msg)
	case relayIntroduce1:
		r.execIntroduce1(rc, msg)
	case relayEstablishRendezvous:
		r.execEstablishRendezvous(rc, msg)
	case relayRendezvous1:
		r.execRendezvous1(rc, msg)
	}
}

func (r *Relay) execExtend(rc *relayCircuit, msg relayMsg) {
	p, err := decodeExtend(msg.Body)
	if err != nil {
		return
	}
	newCirc := r.net.nextCirc()
	r.mu.Lock()
	rc.next = p.Target
	rc.nextCirc = newCirc
	r.byNextCirc[newCirc] = rc.id
	r.pendingExtend[newCirc] = rc.id
	r.mu.Unlock()
	r.net.send(p.Target, Cell{Circ: newCirc, Cmd: CmdCreate, From: r.id, Payload: p.ClientPub})
}

// execBegin opens an exit connection to an external destination.
func (r *Relay) execBegin(rc *relayCircuit, msg relayMsg) {
	host, _, err := readString(msg.Body)
	if err != nil {
		return
	}
	handler, ok := r.net.externalHandler(host)
	if !ok {
		r.sendBackward(rc, relayMsg{Cmd: relayEnd, Stream: msg.Stream})
		return
	}
	client, server := net.Pipe()
	r.mu.Lock()
	rc.streams[msg.Stream] = client
	r.mu.Unlock()
	go handler(server)
	// Pump data coming back from the destination into the circuit.
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		buf := make([]byte, maxDataBody)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				body := make([]byte, n)
				copy(body, buf[:n])
				r.sendBackward(rc, relayMsg{Cmd: relayData, Stream: msg.Stream, Body: body})
			}
			if err != nil {
				r.sendBackward(rc, relayMsg{Cmd: relayEnd, Stream: msg.Stream})
				return
			}
		}
	}()
	r.sendBackward(rc, relayMsg{Cmd: relayConnected, Stream: msg.Stream})
}

// execData handles DATA cells addressed to this relay: exit streams
// (rendezvous splicing is handled before dispatch in execute).
func (r *Relay) execData(rc *relayCircuit, msg relayMsg) {
	r.mu.Lock()
	conn := rc.streams[msg.Stream]
	r.mu.Unlock()
	if conn != nil {
		_, _ = conn.Write(msg.Body)
	}
}

func (r *Relay) execEnd(rc *relayCircuit, msg relayMsg) {
	r.mu.Lock()
	conn := rc.streams[msg.Stream]
	delete(rc.streams, msg.Stream)
	r.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// execEstablishIntro registers this circuit as the introduction path for a
// hidden service.
func (r *Relay) execEstablishIntro(rc *relayCircuit, msg relayMsg) {
	onion, _, err := readString(msg.Body)
	if err != nil {
		return
	}
	r.mu.Lock()
	r.introServices[onion] = rc.id
	r.mu.Unlock()
	r.sendBackward(rc, relayMsg{Cmd: relayIntroEstablished})
}

// execIntroduce1 relays a client's introduction request to the hidden
// service over the service's intro circuit.
func (r *Relay) execIntroduce1(rc *relayCircuit, msg relayMsg) {
	p, err := decodeIntroduce1(msg.Body)
	if err != nil {
		return
	}
	r.mu.Lock()
	introCirc, ok := r.introServices[p.Onion]
	serviceCirc := r.circuits[introCirc]
	r.mu.Unlock()
	if !ok || serviceCirc == nil {
		r.sendBackward(rc, relayMsg{Cmd: relayEnd})
		return
	}
	r.sendBackward(serviceCirc, relayMsg{Cmd: relayIntroduce2, Body: msg.Body})
	r.sendBackward(rc, relayMsg{Cmd: relayIntroduceAck})
}

// execEstablishRendezvous parks a client circuit at a cookie.
func (r *Relay) execEstablishRendezvous(rc *relayCircuit, msg relayMsg) {
	cookie, _, err := readBytes(msg.Body)
	if err != nil {
		return
	}
	r.mu.Lock()
	r.rendezvous[hex.EncodeToString(cookie)] = rc.id
	r.mu.Unlock()
	r.sendBackward(rc, relayMsg{Cmd: relayRendezvousEstablished})
}

// execRendezvous1 joins the service circuit to the parked client circuit
// and forwards the service's ephemeral key to the client.
func (r *Relay) execRendezvous1(rc *relayCircuit, msg relayMsg) {
	p, err := decodeRendezvous1(msg.Body)
	if err != nil {
		return
	}
	key := hex.EncodeToString(p.Cookie)
	r.mu.Lock()
	clientCircID, ok := r.rendezvous[key]
	clientCirc := r.circuits[clientCircID]
	if ok {
		delete(r.rendezvous, key)
		rc.spliceTo = clientCircID
		if clientCirc != nil {
			clientCirc.spliceTo = rc.id
		}
	}
	r.mu.Unlock()
	if !ok || clientCirc == nil {
		r.sendBackward(rc, relayMsg{Cmd: relayEnd})
		return
	}
	r.sendBackward(clientCirc, relayMsg{Cmd: relayRendezvous2, Body: p.ServicePub})
}

// sendBackward originates a relay message toward the client side of rc,
// sealed as this relay's final layer.
func (r *Relay) sendBackward(rc *relayCircuit, msg relayMsg) {
	payload, err := sealLayer(rc.keys.bwdEnc, rc.keys.bwdMAC,
		append([]byte{flagFinal}, encodeRelayMsg(msg)...))
	if err != nil {
		return
	}
	r.net.send(rc.prev, Cell{Circ: rc.id, Cmd: CmdRelay, From: r.id, Payload: payload})
}

// handleDestroy tears a circuit down in both directions.
func (r *Relay) handleDestroy(c Cell) {
	r.mu.Lock()
	rc, ok := r.circuits[c.Circ]
	if !ok {
		if inbound, ok2 := r.byNextCirc[c.Circ]; ok2 {
			rc = r.circuits[inbound]
		}
	}
	if rc == nil {
		r.mu.Unlock()
		return
	}
	delete(r.circuits, rc.id)
	delete(r.byNextCirc, rc.nextCirc)
	for onion, circ := range r.introServices {
		if circ == rc.id {
			delete(r.introServices, onion)
		}
	}
	for cookie, circ := range r.rendezvous {
		if circ == rc.id {
			delete(r.rendezvous, cookie)
		}
	}
	next, nextCirc := rc.next, rc.nextCirc
	prev, prevCirc := rc.prev, rc.id
	streams := rc.streams
	r.mu.Unlock()

	for _, conn := range streams {
		_ = conn.Close()
	}
	if next != "" && c.From != next {
		r.net.send(next, Cell{Circ: nextCirc, Cmd: CmdDestroy, From: r.id})
	}
	if c.From != prev {
		r.net.send(prev, Cell{Circ: prevCirc, Cmd: CmdDestroy, From: r.id})
	}
}
