// Package par provides the deterministic fork-join primitive used by the
// hot loops of the pipeline (EMD placement, profile building, EM model
// selection): split n independent items into contiguous shards, process
// every shard on its own worker goroutine, and let the caller merge the
// per-shard results in shard order.
//
// The contract that makes parallelism safe here is *determinism by
// construction*: workers only write to disjoint, index-addressed slots
// (never to shared accumulators), and all order-sensitive reduction happens
// after Ranges returns, on a single goroutine, in shard order. Under that
// discipline the output of a parallel run is bit-for-bit identical to the
// sequential run regardless of worker count or goroutine scheduling.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"
)

// ShardPanicError is the typed error a panicking worker shard is converted
// to: the panic is recovered inside the worker goroutine, so one poisoned
// item can no longer take down the whole process, and the caller gets the
// shard's item range plus the panic value and stack for diagnosis.
//
// Panic conversion preserves the package's determinism contract: a panic
// is just another shard error, so the lowest-indexed failing shard still
// wins regardless of which worker happened to blow up first in wall-clock
// time.
type ShardPanicError struct {
	// Start and End are the half-open item range of the shard that
	// panicked.
	Start, End int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace, captured at recover
	// time.
	Stack []byte
}

// Error implements the error interface.
func (e *ShardPanicError) Error() string {
	return fmt.Sprintf("par: panic in shard [%d,%d): %v", e.Start, e.End, e.Value)
}

// Workers resolves a Parallelism setting against an item count:
//
//   - parallelism <= 0 selects GOMAXPROCS (use every core);
//   - otherwise the requested value is used;
//   - the result is clamped to [1, items] so no worker starts idle.
func Workers(parallelism, items int) int {
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ShardObserver receives a completion report for every shard a Ranges
// call ran: the worker index, the half-open item range, and the shard's
// wall time. Implementations must be safe for concurrent calls (shards
// finish on their own goroutines). Reports are observation-only — they
// must not influence the computation. *obs.Span implements this
// interface.
type ShardObserver interface {
	ShardDone(worker, start, end int, elapsed time.Duration)
}

// Ranges splits [0, n) into `workers` contiguous shards and calls
// fn(start, end) for each shard on its own goroutine, waiting for all of
// them. Shard boundaries depend only on (workers, n), never on scheduling.
//
// The returned error is deterministic too: the error of the lowest-indexed
// failing shard wins, whichever worker happened to fail first in wall-clock
// time. A panic inside fn is recovered and reported as a *ShardPanicError
// for that shard, competing in the same lowest-shard-wins selection — a
// poisoned item never takes down the process. If ctx is cancelled (and no
// shard reports its own error), the context's error is returned; workers
// observe cancellation between items via the fn contract below. A nil ctx
// means no cancellation.
//
// With workers <= 1 (or n <= 1) fn runs inline on the calling goroutine —
// the sequential path and the parallel path execute the exact same code.
func Ranges(ctx context.Context, workers, n int, fn func(start, end int) error) error {
	return RangesObserved(ctx, workers, n, fn, nil)
}

// RangesObserved is Ranges with an instrumentation hook: when so is
// non-nil every shard's completion is reported through it, timed with the
// per-shard wall clock. A nil so skips the clock reads entirely, so the
// unobserved path is exactly the historical Ranges. The observer has no
// way to affect shard boundaries, ordering, or results — parallel runs
// stay bit-identical to sequential runs, observed or not.
func RangesObserved(ctx context.Context, workers, n int, fn func(start, end int) error, so ShardObserver) error {
	if n <= 0 {
		return ctxErr(ctx)
	}
	workers = Workers(workers, n)
	// guarded runs one shard with panic containment: a panic anywhere in
	// fn (or, on the observed path, in the observer) becomes a typed
	// *ShardPanicError instead of unwinding past the pool. The recover sits
	// in a dedicated frame so the unobserved fast path stays a plain call.
	guarded := func(start, end int) (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &ShardPanicError{Start: start, End: end, Value: v, Stack: debug.Stack()}
			}
		}()
		return fn(start, end)
	}
	shard := func(w, start, end int) error {
		if so == nil {
			return guarded(start, end)
		}
		began := time.Now()
		err := guarded(start, end)
		so.ShardDone(w, start, end, time.Since(began))
		return err
	}
	if workers == 1 {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		return shard(0, 0, n)
	}
	errs := make([]error, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		start, end := w*n/workers, (w+1)*n/workers
		go func(w, start, end int) {
			errs[w] = shard(w, start, end)
			done <- w
		}(w, start, end)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctxErr(ctx)
}

// ctxErr returns the context's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
