// Package atomicio centralizes the temp-file-plus-rename discipline every
// output file in this repo is written with: the destination path either
// holds its previous complete content or the new complete content, never a
// partially written file — even if the process dies mid-write. All CLI
// outputs (datasets, reports, reference profiles) and all stage checkpoints
// go through WriteFile, so the no-partial-outputs invariant is enforced in
// one place and fault-tested in one place (see internal/chaos).
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Ops a Hook is consulted before. Each names the I/O step about to run.
const (
	OpCreate = "create" // creating the temp file next to the destination
	OpWrite  = "write"  // streaming the content into the temp file
	OpClose  = "close"  // flushing and closing the temp file
	OpRename = "rename" // renaming the temp file onto the destination
)

// Hook is a fault-injection point consulted before each I/O step of an
// atomic write. Returning a non-nil error makes that step fail with it.
// Production code passes nil; the chaos harness injects deterministic
// failures here to prove that no failure step can leave a partial
// destination file behind.
type Hook func(op, path string) error

// WriteFile atomically replaces path with whatever write produces: the
// content is streamed into a hidden temp file in the destination
// directory (same filesystem, so the final rename is atomic) and renamed
// over path only after a successful close. On any error — including an
// error returned by write itself — the temp file is removed and the
// previous content of path is left untouched.
func WriteFile(path string, write func(io.Writer) error) error {
	return WriteFileHooked(path, write, nil)
}

// WriteFileHooked is WriteFile with a fault hook. A nil hook is the
// production path and behaves exactly like WriteFile.
func WriteFileHooked(path string, write func(io.Writer) error, hook Hook) error {
	step := func(op string) error {
		if hook == nil {
			return nil
		}
		if err := hook(op, path); err != nil {
			return fmt.Errorf("atomicio: %s %s: %w", op, path, err)
		}
		return nil
	}
	if err := step(OpCreate); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*.tmp")
	if err != nil {
		return fmt.Errorf("atomicio: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	discard := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := step(OpWrite); err != nil {
		return discard(err)
	}
	if err := write(tmp); err != nil {
		return discard(fmt.Errorf("atomicio: write %s: %w", path, err))
	}
	if err := step(OpClose); err != nil {
		return discard(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: close temp for %s: %w", path, err)
	}
	if err := step(OpRename); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: install %s: %w", path, err)
	}
	return nil
}

// WriteFileBytes is WriteFile for pre-encoded content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
