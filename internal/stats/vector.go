// Package stats provides the numerical machinery of the reproduction:
// descriptive statistics, the Pearson correlation used to compare activity
// profiles, linear and circular 1-D Earth Mover's Distance (Wasserstein-1),
// single-Gaussian least-squares curve fitting, and Expectation-Maximization
// for one-dimensional Gaussian mixtures with BIC model selection.
//
// Everything is implemented from scratch on the standard library, with an
// eye to the specific shapes the paper needs: 24-bin probability
// distributions over hours of the day and placement histograms over the 24
// time zones of the world.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmptyInput is returned by routines that need at least one sample.
var ErrEmptyInput = errors.New("stats: empty input")

// ErrLengthMismatch is returned when two vectors must have the same length.
var ErrLengthMismatch = errors.New("stats: length mismatch")

// Sum returns the sum of the values.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of the values.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	return Sum(xs) / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of the values.
func StdDev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// MeanStdDev returns both the mean and the population standard deviation in
// one pass over the data.
func MeanStdDev(xs []float64) (mean, std float64, err error) {
	mean, err = Mean(xs)
	if err != nil {
		return 0, 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs))), nil
}

// Normalize scales the vector so that it sums to one, returning a fresh
// slice. It fails if the vector is empty, contains a negative value, or
// sums to zero.
func Normalize(xs []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmptyInput
	}
	var s float64
	for i, x := range xs {
		if x < 0 {
			return nil, fmt.Errorf("stats: negative mass %g at index %d", x, i)
		}
		s += x
	}
	if s == 0 {
		return nil, errors.New("stats: zero total mass")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / s
	}
	return out, nil
}

// ArgMax returns the index of the largest value, breaking ties toward the
// lowest index. It returns -1 for an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i := range xs {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// Rotate returns a copy of xs rotated left by k positions (element k of the
// input becomes element 0 of the output). Negative k rotates right.
func Rotate(xs []float64, k int) []float64 {
	n := len(xs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	k = ((k % n) + n) % n
	for i := 0; i < n; i++ {
		out[i] = xs[(i+k)%n]
	}
	return out
}

// Pearson computes the Pearson correlation coefficient between two
// same-length vectors. The paper uses it to show that crowd profiles from
// different countries, once shifted to a common time zone, are nearly
// identical (r ~ 0.9) and that the CRD Club profile matches the generic
// Twitter profile (r = 0.93).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, ErrEmptyInput
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance in Pearson input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// PointwiseDistanceStats returns the average and the population standard
// deviation of the point-by-point absolute distance between two curves
// sampled on the same grid. This is the Table II fit-quality metric: "the
// average and standard deviation of the point-by-point distance" between a
// fitted Gaussian (mixture) curve and the crowd placement distribution.
func PointwiseDistanceStats(curve, data []float64) (avg, std float64, err error) {
	if len(curve) != len(data) {
		return 0, 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(curve), len(data))
	}
	if len(curve) == 0 {
		return 0, 0, ErrEmptyInput
	}
	diffs := make([]float64, len(curve))
	for i := range curve {
		diffs[i] = math.Abs(curve[i] - data[i])
	}
	return MeanStdDev(diffs)
}

// Entropy returns the Shannon entropy (in bits) of a probability
// distribution. The uniform 1/24 profile maximizes it at log2(24) ~ 4.585;
// peaked human-activity profiles sit well below. It provides an
// alternative flatness signal to the EMD-to-uniform criterion.
func Entropy(dist []float64) (float64, error) {
	if len(dist) == 0 {
		return 0, ErrEmptyInput
	}
	var sum, h float64
	for i, p := range dist {
		if p < 0 {
			return 0, fmt.Errorf("stats: negative probability %g at index %d", p, i)
		}
		sum += p
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		return 0, fmt.Errorf("stats: distribution sums to %g, want 1", sum)
	}
	return h, nil
}

// KLDivergence returns the Kullback-Leibler divergence D(p || q) in bits.
// It is +Inf when p has mass where q has none.
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(p), len(q))
	}
	if len(p) == 0 {
		return 0, ErrEmptyInput
	}
	var d float64
	for i := range p {
		if p[i] < 0 || q[i] < 0 {
			return 0, fmt.Errorf("stats: negative probability at index %d", i)
		}
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1), nil
		}
		d += p[i] * math.Log2(p[i]/q[i])
	}
	return d, nil
}
