package trace

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBuilderUserLimit drives TryUser into the ordinal ceiling through a
// small injected cap: the boundary behaviour is identical at
// math.MaxInt32, just not testable there.
func TestBuilderUserLimit(t *testing.T) {
	b := NewBuilder(0)
	b.userCap = 3
	for i := 0; i < 3; i++ {
		u, err := b.TryUser(fmt.Sprintf("u%d", i))
		if err != nil {
			t.Fatalf("TryUser(%d): %v", i, err)
		}
		if u != int32(i) {
			t.Fatalf("TryUser(%d) = %d", i, u)
		}
	}
	// Re-interning an existing user is a lookup, not an allocation — it
	// must still succeed at the cap.
	if u, err := b.TryUser("u1"); err != nil || u != 1 {
		t.Fatalf("TryUser(existing) = %d, %v", u, err)
	}
	_, err := b.TryUser("u3")
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("TryUser past cap: got %v, want *LimitError", err)
	}
	if le.What != "users" || le.Limit != 3 {
		t.Fatalf("LimitError = %+v", le)
	}
	if b.NumPosts() != 0 || len(b.ids) != 3 {
		t.Fatalf("failed intern mutated the builder: %d users", len(b.ids))
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("User past cap did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "users limit") {
			t.Fatalf("panic message %v", r)
		}
	}()
	b.User("u4")
}

// TestBuilderAddLimit is the post-position twin of TestBuilderUserLimit.
func TestBuilderAddLimit(t *testing.T) {
	b := NewBuilder(0)
	b.postCap = 2
	u := b.User("alice")
	for i := 0; i < 2; i++ {
		if err := b.TryAdd(u, int64(i)); err != nil {
			t.Fatalf("TryAdd(%d): %v", i, err)
		}
	}
	err := b.TryAdd(u, 2)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("TryAdd past cap: got %v, want *LimitError", err)
	}
	if le.What != "posts" || le.Limit != 2 {
		t.Fatalf("LimitError = %+v", le)
	}
	if b.NumPosts() != 2 {
		t.Fatalf("failed add mutated the builder: %d posts", b.NumPosts())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add past cap did not panic")
		}
	}()
	b.Add(u, 2)
}

// TestHeadAppendCompact checks that a head fed post-by-post compacts into
// exactly the Dataset a batch build of the same stream would hold —
// arrival order preserved across multiple compactions.
func TestHeadAppendCompact(t *testing.T) {
	stream := []Post{
		{UserID: "bob", Time: time.Unix(100, 0).UTC()},
		{UserID: "alice", Time: time.Unix(50, 0).UTC()},
		{UserID: "bob", Time: time.Unix(7200, 0).UTC()},
		{UserID: "carol", Time: time.Unix(3600, 0).UTC()},
		{UserID: "alice", Time: time.Unix(99, 0).UTC()},
	}
	h := NewHead("head", nil)
	for i, p := range stream {
		if err := h.Append(p.UserID, p.Time.Unix()); err != nil {
			t.Fatal(err)
		}
		if i == 2 { // compact mid-stream: the rest lands in a fresh tail
			h.Compact()
			if got := h.Pending(); got != 0 {
				t.Fatalf("Pending after Compact = %d", got)
			}
		}
	}
	if got := h.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	if got := h.TotalPosts(); got != len(stream) {
		t.Fatalf("TotalPosts = %d, want %d", got, len(stream))
	}
	ds := h.Compact()
	if !reflect.DeepEqual(ds.Posts, stream) {
		t.Fatalf("compacted posts:\n%v\nwant:\n%v", ds.Posts, stream)
	}
	// Compacting an unchanged head is a no-op returning the same base.
	if again := h.Compact(); again != ds {
		t.Fatal("Compact with empty tail rebuilt the base")
	}
	// The compacted dataset indexes like any batch dataset.
	if ds.Index().NumUsers() != 3 {
		t.Fatalf("NumUsers = %d", ds.Index().NumUsers())
	}
}

// TestHeadLimitPropagates injects a tiny post cap into the head's tail and
// checks the typed error surfaces through Append without corrupting state.
func TestHeadLimitPropagates(t *testing.T) {
	h := NewHead("head", nil)
	h.tail.postCap = 2
	h.tail.userCap = 2
	if err := h.Append("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := h.Append("b", 2); err != nil {
		t.Fatal(err)
	}
	var le *LimitError
	if err := h.Append("a", 3); !errors.As(err, &le) || le.What != "posts" {
		t.Fatalf("Append past post cap: %v", err)
	}
	if err := h.Append("c", 3); !errors.As(err, &le) || le.What != "users" {
		t.Fatalf("Append past user cap: %v", err)
	}
	if got := h.Pending(); got != 2 {
		t.Fatalf("failed appends mutated the head: Pending = %d", got)
	}
}

// TestHeadConcurrentAppend hammers Append from many goroutines with
// interleaved Compact/TotalPosts calls; the drained head must hold every
// post exactly once. Run under -race this is the mutable head's safety
// gate.
func TestHeadConcurrentAppend(t *testing.T) {
	const writers, perWriter = 8, 200
	h := NewHead("head", nil)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := h.Append(fmt.Sprintf("w%d-u%d", w, i%5), int64(w*perWriter+i)); err != nil {
					t.Error(err)
					return
				}
				if i%64 == 0 {
					h.Compact()
					_ = h.TotalPosts()
				}
			}
		}(w)
	}
	wg.Wait()
	ds := h.Compact()
	if len(ds.Posts) != writers*perWriter {
		t.Fatalf("compacted %d posts, want %d", len(ds.Posts), writers*perWriter)
	}
	// Every appended (user, second) pair survived exactly once.
	got := make([]string, 0, len(ds.Posts))
	for _, p := range ds.Posts {
		got = append(got, fmt.Sprintf("%s@%d", p.UserID, p.Time.Unix()))
	}
	sort.Strings(got)
	want := make([]string, 0, writers*perWriter)
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			want = append(want, fmt.Sprintf("w%d-u%d@%d", w, i%5, w*perWriter+i))
		}
	}
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("concurrent appends lost or duplicated posts")
	}
}

// TestShardedHeadShardInvariance is the deterministic-merge property test:
// a fixed post stream appended sequentially must compact to exactly the
// same Dataset — down to the snapshot bytes — at every shard count, and to
// what the single-mutex Head produces, including mid-stream compactions
// and a pre-existing base.
func TestShardedHeadShardInvariance(t *testing.T) {
	const posts = 700
	stream := make([]Post, posts)
	for i := range stream {
		stream[i] = Post{
			UserID: fmt.Sprintf("user-%d", (i*7)%23),
			Time:   time.Unix(int64(1520000000+i*311), 0).UTC(),
		}
	}
	base := NewBuilder(0)
	for i := 0; i < 50; i++ {
		base.Add(base.User(fmt.Sprintf("base-%d", i%5)), int64(1510000000+i))
	}
	for _, withBase := range []bool{false, true} {
		var want []byte
		var baseDS *Dataset
		if withBase {
			baseDS = base.Dataset("head", false)
		}
		ref := NewHead("head", baseDS)
		for i, p := range stream {
			if err := ref.Append(p.UserID, p.Time.Unix()); err != nil {
				t.Fatal(err)
			}
			if i == 333 {
				ref.Compact()
			}
		}
		want = snapshotBytes(t, ref.Compact())
		for _, shards := range []int{1, 2, 8, 16} {
			var hb *Dataset
			if withBase {
				hb = base.Dataset("head", false)
			}
			h := NewShardedHead("head", hb, shards)
			for i, p := range stream {
				if err := h.Append(p.UserID, p.Time.Unix()); err != nil {
					t.Fatal(err)
				}
				if i == 333 {
					h.Compact()
					if got := h.Pending(); got != 0 {
						t.Fatalf("shards=%d: Pending after Compact = %d", shards, got)
					}
				}
			}
			wantTotal := len(stream)
			if withBase {
				wantTotal += 50
			}
			if got := h.TotalPosts(); got != wantTotal {
				t.Fatalf("shards=%d: TotalPosts = %d, want %d", shards, got, wantTotal)
			}
			ds := h.Compact()
			if got := snapshotBytes(t, ds); !reflect.DeepEqual(got, want) {
				t.Errorf("base=%v shards=%d: compacted snapshot differs from single-mutex Head", withBase, shards)
			}
			// Compacting an unchanged head returns the same immutable base.
			if again := h.Compact(); again != ds {
				t.Errorf("shards=%d: Compact with empty tails rebuilt the base", shards)
			}
		}
	}
}

func snapshotBytes(t *testing.T, ds *Dataset) []byte {
	t.Helper()
	var buf strings.Builder
	if err := ds.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return []byte(buf.String())
}

// TestShardedHeadAppendBytes checks the zero-copy byte-slice append path
// lands posts identically to the string path, and that the per-append
// fast path does not allocate once the shard knows the user.
func TestShardedHeadAppendBytes(t *testing.T) {
	h := NewShardedHead("head", nil, 4)
	if err := h.AppendBytes([]byte("alice"), 100); err != nil {
		t.Fatal(err)
	}
	buf := []byte("alice")
	allocs := testing.AllocsPerRun(500, func() {
		if err := h.AppendBytes(buf, 200); err != nil {
			t.Fatal(err)
		}
	})
	// Steady-state appends only pay amortized slice growth inside the
	// shard tail; anything at or above one alloc per post means the
	// []byte→string elision regressed.
	if allocs >= 1 {
		t.Errorf("AppendBytes allocates %v per post for a known user", allocs)
	}
	ds := h.Compact()
	for _, p := range ds.Posts {
		if p.UserID != "alice" {
			t.Fatalf("unexpected user %q", p.UserID)
		}
	}
	// 1 initial + 1 AllocsPerRun warm-up + 500 measured runs.
	if len(ds.Posts) != 502 {
		t.Fatalf("compacted %d posts, want 502", len(ds.Posts))
	}
}

// TestShardedHeadLimitPropagates injects a tiny post cap into one shard's
// tail and checks the typed error surfaces through Append without
// corrupting state.
func TestShardedHeadLimitPropagates(t *testing.T) {
	h := NewShardedHead("head", nil, 1)
	h.shards[0].tail.postCap = 2
	h.shards[0].tail.userCap = 2
	if err := h.Append("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := h.Append("b", 2); err != nil {
		t.Fatal(err)
	}
	var le *LimitError
	if err := h.Append("a", 3); !errors.As(err, &le) || le.What != "posts" {
		t.Fatalf("Append past post cap: %v", err)
	}
	if err := h.Append("c", 3); !errors.As(err, &le) || le.What != "users" {
		t.Fatalf("Append past user cap: %v", err)
	}
	if got := h.Pending(); got != 2 {
		t.Fatalf("failed appends mutated the head: Pending = %d", got)
	}
}

// TestShardedHeadConcurrentAppend hammers AppendBytes from many goroutines
// with interleaved Compact/TotalPosts calls; the drained head must hold
// every post exactly once. Run under -race this is the sharded head's
// safety gate.
func TestShardedHeadConcurrentAppend(t *testing.T) {
	const writers, perWriter = 8, 200
	for _, shards := range []int{1, 2, 8, 16} {
		h := NewShardedHead("head", nil, shards)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					if err := h.AppendBytes([]byte(fmt.Sprintf("w%d-u%d", w, i%5)), int64(w*perWriter+i)); err != nil {
						t.Error(err)
						return
					}
					if i%64 == 0 {
						h.Compact()
						_ = h.TotalPosts()
						_ = h.Pending()
					}
				}
			}(w)
		}
		wg.Wait()
		ds := h.Compact()
		if len(ds.Posts) != writers*perWriter {
			t.Fatalf("shards=%d: compacted %d posts, want %d", shards, len(ds.Posts), writers*perWriter)
		}
		got := make([]string, 0, len(ds.Posts))
		for _, p := range ds.Posts {
			got = append(got, fmt.Sprintf("%s@%d", p.UserID, p.Time.Unix()))
		}
		sort.Strings(got)
		want := make([]string, 0, writers*perWriter)
		for w := 0; w < writers; w++ {
			for i := 0; i < perWriter; i++ {
				want = append(want, fmt.Sprintf("w%d-u%d@%d", w, i%5, w*perWriter+i))
			}
		}
		sort.Strings(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: concurrent appends lost or duplicated posts", shards)
		}
	}
}
