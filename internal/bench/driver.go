package bench

// The serving-path load driver behind `darkcrowd bench`: a warp-style
// concurrent HTTP benchmark against a live geolocation daemon. N workers
// fire operations drawn from a workload mix (pure ingest, pure place,
// pure report, or the serving-shaped mixed blend) for a wall-clock
// duration, recording per-operation latencies into the same lock-free
// obs.LatencyHist the daemon uses for /metrics — one shared histogram per
// op type, updated straight from every worker goroutine, percentiles read
// once at the end.
//
// Autotermination mirrors warp's variance window: a sampler tracks
// per-tick throughput, and once a full window of samples varies by less
// than the threshold (coefficient of variation), the run is declared
// steady and stopped early — long enough to be past warmup, no longer
// than the measurement needs.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"darkcrowd/internal/obs"
)

// Workload names accepted by DriverOpts.Workload.
const (
	WorkloadIngest  = "ingest"
	WorkloadPlace   = "place"
	WorkloadReport  = "report"
	WorkloadHealthz = "healthz"
	WorkloadMixed   = "mixed"
)

// mixedWeights is the serving-shaped blend, in picks per 100: read-heavy
// placement lookups over a steady ingest stream, a health probe, and the
// occasional full report (reports serialize an EM fit behind the daemon's
// fitMu, so they stay rare — exactly like production polling).
var mixedWeights = []struct {
	op string
	w  int
}{
	{WorkloadPlace, 60},
	{WorkloadIngest, 30},
	{WorkloadHealthz, 9},
	{WorkloadReport, 1},
}

// DriverOpts parameterizes one load run.
type DriverOpts struct {
	// URL is the daemon base URL (required), e.g. http://127.0.0.1:8080.
	URL string
	// Workload is one of ingest, place, report, healthz, mixed
	// (default mixed).
	Workload string
	// Concurrent is the worker count (default 8).
	Concurrent int
	// Duration caps the run's wall clock (default 10s); autotermination
	// may stop earlier.
	Duration time.Duration
	// IngestBatch is the NDJSON line count per ingest request (default
	// 256 — decode throughput, not HTTP overhead, is the subject).
	IngestBatch int
	// Users is the synthetic user-ID space (default 64).
	Users int
	// Seed drives the deterministic op/user sequence (default 1).
	Seed int64
	// AutoTerm enables variance-window autotermination.
	AutoTerm bool
	// AutoTermWindow is the steadiness window (default 3s).
	AutoTermWindow time.Duration
	// AutoTermCV is the coefficient-of-variation threshold under which
	// throughput counts as steady (default 0.075 = 7.5%).
	AutoTermCV float64
	// Client overrides the HTTP client (default: pooled transport sized
	// to Concurrent).
	Client *http.Client
}

// OpStats is one op type's aggregate over a run.
type OpStats struct {
	Ops       int64               `json:"ops"`
	Errors    int64               `json:"errors"`
	OpsPerSec float64             `json:"ops_per_sec"`
	Latency   obs.LatencySnapshot `json:"latency"`
}

// ServeResult is one load run's outcome — the Serve section of
// BENCH_serve.json.
type ServeResult struct {
	Workload       string  `json:"workload"`
	Concurrent     int     `json:"concurrent"`
	IngestBatch    int     `json:"ingest_batch,omitempty"`
	DurationSec    float64 `json:"duration_sec"`
	AutoTerminated bool    `json:"auto_terminated,omitempty"`
	TotalOps       int64   `json:"total_ops"`
	TotalErrors    int64   `json:"total_errors,omitempty"`
	// OpsPerSec is total throughput across op types; IngestLinesPerSec
	// unrolls ingest batches into per-post throughput.
	OpsPerSec         float64            `json:"ops_per_sec"`
	IngestLinesPerSec float64            `json:"ingest_lines_per_sec,omitempty"`
	Ops               map[string]OpStats `json:"ops"`
}

// opMeter is one op type's live instruments, shared by all workers.
type opMeter struct {
	ops  atomic.Int64
	errs atomic.Int64
	lat  obs.LatencyHist
}

// Drive runs one load benchmark against a live daemon and aggregates
// per-op throughput and latency percentiles. It probes /healthz once
// before starting so an unreachable daemon fails fast with a clear error
// instead of a run full of errors.
func Drive(opts DriverOpts) (*ServeResult, error) {
	if opts.URL == "" {
		return nil, errors.New("bench: DriverOpts.URL is required")
	}
	if opts.Workload == "" {
		opts.Workload = WorkloadMixed
	}
	switch opts.Workload {
	case WorkloadIngest, WorkloadPlace, WorkloadReport, WorkloadHealthz, WorkloadMixed:
	default:
		return nil, fmt.Errorf("bench: unknown workload %q", opts.Workload)
	}
	if opts.Concurrent <= 0 {
		opts.Concurrent = 8
	}
	if opts.Duration <= 0 {
		opts.Duration = 10 * time.Second
	}
	if opts.IngestBatch <= 0 {
		opts.IngestBatch = 256
	}
	if opts.Users <= 0 {
		opts.Users = 64
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.AutoTermWindow <= 0 {
		opts.AutoTermWindow = 3 * time.Second
	}
	if opts.AutoTermCV <= 0 {
		opts.AutoTermCV = 0.075
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        opts.Concurrent * 2,
				MaxIdleConnsPerHost: opts.Concurrent * 2,
			},
		}
	}

	if err := probe(client, opts.URL); err != nil {
		return nil, err
	}
	batches := renderBatches(opts.Seed, opts.Users, opts.IngestBatch)

	meters := map[string]*opMeter{
		WorkloadIngest:  {},
		WorkloadPlace:   {},
		WorkloadReport:  {},
		WorkloadHealthz: {},
	}
	var total atomic.Int64
	ctx, cancel := context.WithTimeout(context.Background(), opts.Duration)
	defer cancel()
	var autoTerm atomic.Bool
	if opts.AutoTerm {
		go steadySampler(ctx, cancel, &total, opts.AutoTermWindow, opts.AutoTermCV, &autoTerm)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrent; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
			for ctx.Err() == nil {
				op := pickOp(opts.Workload, rng)
				m := meters[op]
				t0 := time.Now()
				err := doOp(ctx, client, opts.URL, op, rng, opts.Users, batches)
				m.lat.Observe(time.Since(t0))
				m.ops.Add(1)
				total.Add(1)
				if err != nil && ctx.Err() == nil {
					m.errs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := &ServeResult{
		Workload:       opts.Workload,
		Concurrent:     opts.Concurrent,
		IngestBatch:    opts.IngestBatch,
		DurationSec:    Round2(elapsed),
		AutoTerminated: autoTerm.Load(),
		Ops:            make(map[string]OpStats),
	}
	for op, m := range meters {
		ops := m.ops.Load()
		if ops == 0 {
			continue
		}
		res.TotalOps += ops
		res.TotalErrors += m.errs.Load()
		res.Ops[op] = OpStats{
			Ops:       ops,
			Errors:    m.errs.Load(),
			OpsPerSec: Round2(float64(ops) / elapsed),
			Latency:   m.lat.Snapshot(),
		}
		if op == WorkloadIngest {
			res.IngestLinesPerSec = Round2(float64(ops) * float64(opts.IngestBatch) / elapsed)
		}
	}
	res.OpsPerSec = Round2(float64(res.TotalOps) / elapsed)
	if res.TotalOps > 0 && res.TotalErrors == res.TotalOps {
		return res, fmt.Errorf("bench: all %d requests failed against %s", res.TotalOps, opts.URL)
	}
	return res, nil
}

// probe fails fast when the daemon is unreachable.
func probe(client *http.Client, url string) error {
	resp, err := client.Get(url + "/healthz")
	if err != nil {
		return fmt.Errorf("bench: daemon unreachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("bench: daemon /healthz returned %d", resp.StatusCode)
	}
	return nil
}

// pickOp draws the next op for a worker: fixed for single-op workloads,
// weighted for mixed.
func pickOp(workload string, rng *rand.Rand) string {
	if workload != WorkloadMixed {
		return workload
	}
	n := rng.Intn(100)
	for _, mw := range mixedWeights {
		if n < mw.w {
			return mw.op
		}
		n -= mw.w
	}
	return WorkloadPlace
}

// renderBatches pre-renders a rotation of plain NDJSON ingest bodies so
// the client's per-op cost is one reader over a byte slice — the daemon's
// decode path, not client-side fmt work, is what the run measures. Lines
// use the fixed fast-path shape with deterministic users and timestamps.
var benchEpoch = time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)

func renderBatches(seed int64, users, batch int) [][]byte {
	const rotation = 16
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, rotation)
	for b := range out {
		var buf bytes.Buffer
		buf.Grow(batch * 48)
		for i := 0; i < batch; i++ {
			ts := benchEpoch.Add(time.Duration(rng.Intn(365*24)) * time.Hour)
			fmt.Fprintf(&buf, "{\"user_id\":\"bench-user-%d\",\"time\":%q}\n",
				rng.Intn(users), ts.Format(time.RFC3339))
		}
		out[b] = buf.Bytes()
	}
	return out
}

// doOp fires one operation. Expected non-200 statuses (404 for unknown
// users, 503 before the first active user) are not errors — they are the
// API answering; transport failures and 5xx surprises are.
func doOp(ctx context.Context, client *http.Client, url, op string, rng *rand.Rand, users int, batches [][]byte) error {
	var resp *http.Response
	var err error
	switch op {
	case WorkloadIngest:
		body := batches[rng.Intn(len(batches))]
		var req *http.Request
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, url+"/ingest", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err = client.Do(req)
	case WorkloadPlace:
		resp, err = getCtx(ctx, client, fmt.Sprintf("%s/place/bench-user-%d", url, rng.Intn(users)))
	case WorkloadReport:
		resp, err = getCtx(ctx, client, url+"/report")
	case WorkloadHealthz:
		resp, err = getCtx(ctx, client, url+"/healthz")
	}
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		return nil
	case op == WorkloadPlace && resp.StatusCode == http.StatusNotFound:
		return nil
	case op == WorkloadReport && resp.StatusCode == http.StatusServiceUnavailable:
		return nil
	}
	return fmt.Errorf("%s: status %d", op, resp.StatusCode)
}

func getCtx(ctx context.Context, client *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return client.Do(req)
}

// steadySampler cancels the run once throughput is steady: it samples the
// total op counter on a fixed tick and, once a full window of samples is
// in hand, stops when their coefficient of variation drops under cv.
func steadySampler(ctx context.Context, cancel context.CancelFunc, total *atomic.Int64, window time.Duration, cv float64, flag *atomic.Bool) {
	const samplesPerWindow = 4
	tick := window / samplesPerWindow
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var samples []float64
	last := total.Load()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		cur := total.Load()
		samples = append(samples, float64(cur-last))
		last = cur
		if len(samples) < samplesPerWindow {
			continue
		}
		win := samples[len(samples)-samplesPerWindow:]
		mean := 0.0
		for _, s := range win {
			mean += s
		}
		mean /= samplesPerWindow
		if mean <= 0 {
			continue
		}
		variance := 0.0
		for _, s := range win {
			variance += (s - mean) * (s - mean)
		}
		sd := math.Sqrt(variance / samplesPerWindow)
		if sd/mean < cv {
			flag.Store(true)
			cancel()
			return
		}
	}
}

// CheckServe gates a fresh driver run on the committed report at path:
// fresh total throughput must not fall below committed/factor. A missing
// report (or one without a Serve section) skips with a note.
func CheckServe(w io.Writer, path string, fresh *ServeResult, factor float64) error {
	if w == nil {
		w = io.Discard
	}
	committed, err := Load(path)
	if err != nil {
		return err
	}
	if committed == nil || committed.Serve == nil {
		fmt.Fprintf(w, "check: no committed serve report at %s, skipping gate\n", path)
		return nil
	}
	old, cur := committed.Serve.OpsPerSec, fresh.OpsPerSec
	if old > 0 && cur*factor < old {
		return fmt.Errorf("bench: serve throughput regressed %.2fx (%.0f -> %.0f ops/s, gate %.0fx)",
			old/cur, old, cur, factor)
	}
	fmt.Fprintf(w, "check passed: serve throughput %.0f ops/s vs committed %.0f (gate %.0fx)\n", cur, old, factor)
	return nil
}
