package forum

import (
	"strings"
	"testing"
)

func TestNewSimScalesCensus(t *testing.T) {
	sim, err := NewSim(ServeConfig{Forum: "CRD Club", Seed: 1, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Spec.Users != 209/8 {
		t.Fatalf("scaled users = %d, want %d", sim.Spec.Users, 209/8)
	}
	if sim.Spec.Posts < sim.Spec.Users*50 {
		t.Fatalf("scaled posts = %d, below the %d floor", sim.Spec.Posts, sim.Spec.Users*50)
	}
	if sim.Forum.NumMembers() == 0 || sim.Forum.NumPosts() == 0 {
		t.Fatalf("forum empty: %d members, %d posts", sim.Forum.NumMembers(), sim.Forum.NumPosts())
	}
	if sim.Forum.NumPosts() != sim.Crowd.NumPosts() {
		t.Fatalf("forum holds %d posts, crowd has %d", sim.Forum.NumPosts(), sim.Crowd.NumPosts())
	}
	// The tiny-census floor: an absurd scale still yields >= 20 users.
	floor, err := NewSim(ServeConfig{Forum: "Italian DarkNet Community", Seed: 1, Scale: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if floor.Spec.Users != 20 {
		t.Fatalf("floored users = %d, want 20", floor.Spec.Users)
	}
}

func TestNewSimUnknownForum(t *testing.T) {
	_, err := NewSim(ServeConfig{Forum: "No Such Forum", Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "unknown forum") {
		t.Fatalf("err = %v", err)
	}
}
