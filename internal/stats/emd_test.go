package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEMDLinear(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		p, q []float64
		want float64
	}{
		{"identical", []float64{0.5, 0.5}, []float64{0.5, 0.5}, 0},
		{"adjacent move", []float64{1, 0}, []float64{0, 1}, 1},
		{"two bins away", []float64{1, 0, 0}, []float64{0, 0, 1}, 2},
		{"split", []float64{1, 0, 0}, []float64{0.5, 0, 0.5}, 1},
		{"symmetric mass", []float64{0.5, 0, 0.5}, []float64{0, 1, 0}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := EMDLinear(tt.p, tt.q)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("EMDLinear = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestEMDCircular(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		p, q []float64
		want float64
	}{
		{"identical", []float64{0.25, 0.25, 0.25, 0.25}, []float64{0.25, 0.25, 0.25, 0.25}, 0},
		// On the circle, bin 0 and bin 3 of a 4-bin circle are adjacent.
		{"wraparound", []float64{1, 0, 0, 0}, []float64{0, 0, 0, 1}, 1},
		{"linear would be 3", []float64{1, 0, 0, 0}, []float64{0, 0, 0, 1}, 1},
		{"opposite", []float64{1, 0, 0, 0}, []float64{0, 0, 1, 0}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := EMDCircular(tt.p, tt.q)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("EMDCircular = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestEMDCircularNeverExceedsLinear(t *testing.T) {
	t.Parallel()
	prop := func(rawP, rawQ [12]uint8) bool {
		p := make([]float64, 12)
		q := make([]float64, 12)
		var sp, sq float64
		for i := 0; i < 12; i++ {
			p[i] = float64(rawP[i])
			q[i] = float64(rawQ[i])
			sp += p[i]
			sq += q[i]
		}
		if sp == 0 || sq == 0 {
			return true
		}
		pn, err := Normalize(p)
		if err != nil {
			return false
		}
		qn, err := Normalize(q)
		if err != nil {
			return false
		}
		lin, err1 := EMDLinear(pn, qn)
		circ, err2 := EMDCircular(pn, qn)
		if err1 != nil || err2 != nil {
			return false
		}
		return circ <= lin+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEMDMetricProperties(t *testing.T) {
	t.Parallel()
	mk := func(raw [8]uint8) ([]float64, bool) {
		xs := make([]float64, 8)
		var s float64
		for i := range raw {
			xs[i] = float64(raw[i])
			s += xs[i]
		}
		if s == 0 {
			return nil, false
		}
		n, err := Normalize(xs)
		if err != nil {
			return nil, false
		}
		return n, true
	}

	t.Run("symmetry", func(t *testing.T) {
		prop := func(rawP, rawQ [8]uint8) bool {
			p, okP := mk(rawP)
			q, okQ := mk(rawQ)
			if !okP || !okQ {
				return true
			}
			ab, _ := EMDCircular(p, q)
			ba, _ := EMDCircular(q, p)
			return almostEqual(ab, ba, 1e-9)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})

	t.Run("identity", func(t *testing.T) {
		prop := func(raw [8]uint8) bool {
			p, ok := mk(raw)
			if !ok {
				return true
			}
			d, _ := EMDCircular(p, p)
			return almostEqual(d, 0, 1e-9)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})

	t.Run("non-negativity", func(t *testing.T) {
		prop := func(rawP, rawQ [8]uint8) bool {
			p, okP := mk(rawP)
			q, okQ := mk(rawQ)
			if !okP || !okQ {
				return true
			}
			d, _ := EMDCircular(p, q)
			return d >= -1e-12
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})

	t.Run("triangle inequality", func(t *testing.T) {
		prop := func(rawP, rawQ, rawR [8]uint8) bool {
			p, okP := mk(rawP)
			q, okQ := mk(rawQ)
			r, okR := mk(rawR)
			if !okP || !okQ || !okR {
				return true
			}
			pq, _ := EMDCircular(p, q)
			qr, _ := EMDCircular(q, r)
			pr, _ := EMDCircular(p, r)
			return pr <= pq+qr+1e-9
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})

	t.Run("rotation invariance", func(t *testing.T) {
		prop := func(rawP, rawQ [8]uint8, k int8) bool {
			p, okP := mk(rawP)
			q, okQ := mk(rawQ)
			if !okP || !okQ {
				return true
			}
			d1, _ := EMDCircular(p, q)
			d2, _ := EMDCircular(Rotate(p, int(k)), Rotate(q, int(k)))
			return almostEqual(d1, d2, 1e-9)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})
}

func TestEMDErrors(t *testing.T) {
	t.Parallel()
	if _, err := EMDLinear([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := EMDLinear(nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := EMDLinear([]float64{1, 0}, []float64{0.2, 0.2}); err == nil {
		t.Error("unequal mass should fail")
	}
	if _, err := EMDCircular([]float64{1, -0.5, 0.5}, []float64{0.5, 0, 0.5}); err == nil {
		t.Error("negative mass should fail")
	}
}

func TestEMDShiftCost(t *testing.T) {
	t.Parallel()
	// Shifting a concentrated distribution by k bins on a 24-bin circle
	// should cost about min(k, 24-k) per unit mass.
	base := make([]float64, 24)
	base[12] = 1
	for k := 0; k <= 23; k++ {
		shifted := Rotate(base, -k)
		d, err := EMDCircular(base, shifted)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(k)
		if k > 12 {
			want = float64(24 - k)
		}
		if !almostEqual(d, want, 1e-9) {
			t.Errorf("shift %d: EMD = %g, want %g", k, d, want)
		}
	}
}

func TestMedian(t *testing.T) {
	t.Parallel()
	tests := []struct {
		in   []float64
		want float64
	}{
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, tt := range tests {
		if got := median(tt.in); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("median(%v) = %g, want %g", tt.in, got, tt.want)
		}
	}
	// median must not mutate its input.
	in := []float64{3, 1, 2}
	median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("median mutated its input")
	}
}

func TestEMDUniformVsPeaked(t *testing.T) {
	t.Parallel()
	// A peaked profile should be far from uniform; this is the flat-profile
	// polishing criterion's discriminative signal (§IV-C).
	uniform := make([]float64, 24)
	for i := range uniform {
		uniform[i] = 1.0 / 24
	}
	peaked := make([]float64, 24)
	peaked[21] = 1
	d, err := EMDCircular(uniform, peaked)
	if err != nil {
		t.Fatal(err)
	}
	if d < 3 {
		t.Errorf("EMD(uniform, peaked) = %g, expected substantial distance", d)
	}
	if math.IsNaN(d) {
		t.Error("NaN distance")
	}
}
