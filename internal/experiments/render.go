package experiments

import (
	"fmt"
	"net/http"
	"strings"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/forum"
	"darkcrowd/internal/onion"
	"darkcrowd/internal/tz"
	"darkcrowd/internal/viz"
)

// addProfileChart attaches an hour-of-day profile figure to a result.
func (r *Result) addProfileChart(name, title string, p profile.Profile) {
	r.Charts = append(r.Charts, NamedChart{
		Name: name,
		Chart: viz.BarChart{
			Title:  title,
			Labels: viz.HourLabels(),
			Values: p.Slice(),
			YLabel: "activity probability",
		},
	})
}

// addPlacementChart attaches a placement histogram figure, optionally with
// the fitted mixture curve overlaid.
func (r *Result) addPlacementChart(name, title string, hist, overlay []float64) {
	r.Charts = append(r.Charts, NamedChart{
		Name: name,
		Chart: viz.BarChart{
			Title:   title,
			Labels:  viz.ZoneLabels(),
			Values:  append([]float64(nil), hist...),
			Overlay: append([]float64(nil), overlay...),
			YLabel:  "crowd share",
		},
	})
}

// barChart renders a 24-bin series as ASCII bars, one line per bin.
func barChart(labels []string, values []float64, width int) []string {
	maxVal := 0.0
	for _, v := range values {
		if v > maxVal {
			maxVal = v
		}
	}
	out := make([]string, 0, len(values))
	for i, v := range values {
		bar := 0
		if maxVal > 0 {
			bar = int(v / maxVal * float64(width))
		}
		out = append(out, fmt.Sprintf("  %-8s %-*s %.4f", labels[i], width, strings.Repeat("#", bar), v))
	}
	return out
}

// hourLabels returns "00h".."23h".
func hourLabels() []string {
	out := make([]string, 24)
	for h := range out {
		out[h] = fmt.Sprintf("%02dh", h)
	}
	return out
}

// zoneLabels returns "UTC-11".."UTC+12" in zone-index order.
func zoneLabels() []string {
	out := make([]string, 0, 24)
	for _, off := range tz.AllOffsets() {
		out = append(out, off.String())
	}
	return out
}

// profileChart renders a Profile as an hour-of-day bar chart.
func profileChart(p profile.Profile) []string {
	return barChart(hourLabels(), p.Slice(), 40)
}

// placementChart renders a placement histogram over the 24 zones.
func placementChart(hist []float64) []string {
	return barChart(zoneLabels(), hist, 40)
}

// describeComponents renders GMM components the way the paper discusses
// them.
func describeComponents(components []geoloc.Component) []string {
	out := make([]string, 0, len(components))
	for i, c := range components {
		out = append(out, fmt.Sprintf("  component %d: %s", i+1, c))
	}
	return out
}

// hasComponentNear reports whether any component center lies within tol
// zones of the wanted offset.
func hasComponentNear(components []geoloc.Component, want float64, tol float64) bool {
	for _, c := range components {
		d := c.Offset - want
		if d < 0 {
			d = -d
		}
		if d > 12 {
			d = 24 - d
		}
		if d <= tol {
			return true
		}
	}
	return false
}

// onionHTTPServer pairs an http.Server with its hidden-service listener.
type onionHTTPServer struct {
	server *http.Server
}

func newOnionHTTPServer(f *forum.Forum, svc *onion.Service) *onionHTTPServer {
	s := &http.Server{Handler: f.Handler()}
	go func() { _ = s.Serve(svc.Listener()) }()
	return &onionHTTPServer{server: s}
}

func (s *onionHTTPServer) Close() {
	_ = s.server.Close()
}

func newOnionHTTPClient(torClient *onion.Client) *http.Client {
	return &http.Client{Transport: &http.Transport{DialContext: torClient.DialContext}}
}
