package onion

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// CellCommand is the link-level cell type exchanged between adjacent nodes.
type CellCommand uint8

// Link-level commands, mirroring Tor's create/created/relay/destroy.
const (
	CmdCreate CellCommand = iota + 1
	CmdCreated
	CmdRelay
	CmdDestroy
)

// String implements fmt.Stringer.
func (c CellCommand) String() string {
	switch c {
	case CmdCreate:
		return "CREATE"
	case CmdCreated:
		return "CREATED"
	case CmdRelay:
		return "RELAY"
	case CmdDestroy:
		return "DESTROY"
	default:
		return fmt.Sprintf("CellCommand(%d)", uint8(c))
	}
}

// Cell is the unit of transfer on a link between two adjacent nodes.
type Cell struct {
	// Circ identifies the circuit on the link.
	Circ uint32
	// Cmd is the link-level command.
	Cmd CellCommand
	// From is the node ID of the sender (the simulated TCP peer).
	From string
	// Payload is the command body; for CmdRelay it is onion-encrypted.
	Payload []byte
}

// relayCommand is the command of a decrypted relay cell.
type relayCommand uint8

// Relay-level commands, mirroring Tor's relay cell types plus the
// hidden-service sub-protocol (§II-B of the paper).
const (
	relayExtend relayCommand = iota + 1
	relayExtended
	relayBegin
	relayConnected
	relayData
	relayEnd
	relayEstablishIntro
	relayIntroEstablished
	relayIntroduce1
	relayIntroduceAck
	relayIntroduce2
	relayEstablishRendezvous
	relayRendezvousEstablished
	relayRendezvous1
	relayRendezvous2
	relayTruncated
)

// String implements fmt.Stringer.
func (c relayCommand) String() string {
	names := map[relayCommand]string{
		relayExtend:                "EXTEND",
		relayExtended:              "EXTENDED",
		relayBegin:                 "BEGIN",
		relayConnected:             "CONNECTED",
		relayData:                  "DATA",
		relayEnd:                   "END",
		relayEstablishIntro:        "ESTABLISH_INTRO",
		relayIntroEstablished:      "INTRO_ESTABLISHED",
		relayIntroduce1:            "INTRODUCE1",
		relayIntroduceAck:          "INTRODUCE_ACK",
		relayIntroduce2:            "INTRODUCE2",
		relayEstablishRendezvous:   "ESTABLISH_RENDEZVOUS",
		relayRendezvousEstablished: "RENDEZVOUS_ESTABLISHED",
		relayRendezvous1:           "RENDEZVOUS1",
		relayRendezvous2:           "RENDEZVOUS2",
		relayTruncated:             "TRUNCATED",
	}
	if n, ok := names[c]; ok {
		return n
	}
	return fmt.Sprintf("relayCommand(%d)", uint8(c))
}

// relayMsg is the plaintext content of a relay cell once all onion layers
// are removed: a command, a stream ID (0 for circuit-level commands) and a
// body.
type relayMsg struct {
	Cmd    relayCommand
	Stream uint16
	Body   []byte
}

// flag bytes marking whether a layer is final (addressed to the unwrapping
// node) or must be forwarded another hop.
const (
	flagForward byte = 0
	flagFinal   byte = 1
)

// errTruncatedMessage reports a malformed wire structure.
var errTruncatedMessage = errors.New("onion: truncated message")

// encodeRelayMsg serializes a relay message: cmd(1) stream(2) len(4) body.
func encodeRelayMsg(m relayMsg) []byte {
	out := make([]byte, 7+len(m.Body))
	out[0] = byte(m.Cmd)
	binary.BigEndian.PutUint16(out[1:3], m.Stream)
	binary.BigEndian.PutUint32(out[3:7], uint32(len(m.Body)))
	copy(out[7:], m.Body)
	return out
}

// decodeRelayMsg parses a serialized relay message.
func decodeRelayMsg(b []byte) (relayMsg, error) {
	if len(b) < 7 {
		return relayMsg{}, errTruncatedMessage
	}
	n := binary.BigEndian.Uint32(b[3:7])
	if uint32(len(b)-7) < n {
		return relayMsg{}, errTruncatedMessage
	}
	return relayMsg{
		Cmd:    relayCommand(b[0]),
		Stream: binary.BigEndian.Uint16(b[1:3]),
		Body:   b[7 : 7+n],
	}, nil
}

// writeString appends a length-prefixed string.
func writeString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// readString consumes a length-prefixed string, returning it and the rest.
func readString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errTruncatedMessage
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b)-2 < n {
		return "", nil, errTruncatedMessage
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// writeBytes appends a length-prefixed byte slice.
func writeBytes(buf, data []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(data)))
	return append(buf, data...)
}

// readBytes consumes a length-prefixed byte slice.
func readBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 2 {
		return nil, nil, errTruncatedMessage
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b)-2 < n {
		return nil, nil, errTruncatedMessage
	}
	out := make([]byte, n)
	copy(out, b[2:2+n])
	return out, b[2+n:], nil
}

// extendPayload is the body of a relayExtend message.
type extendPayload struct {
	Target    string // relay ID to extend the circuit to
	ClientPub []byte // client's ephemeral public key for the new hop
}

func encodeExtend(p extendPayload) []byte {
	buf := writeString(nil, p.Target)
	return writeBytes(buf, p.ClientPub)
}

func decodeExtend(b []byte) (extendPayload, error) {
	target, rest, err := readString(b)
	if err != nil {
		return extendPayload{}, fmt.Errorf("onion: decode extend target: %w", err)
	}
	pub, _, err := readBytes(rest)
	if err != nil {
		return extendPayload{}, fmt.Errorf("onion: decode extend pubkey: %w", err)
	}
	return extendPayload{Target: target, ClientPub: pub}, nil
}

// introduce1Payload is the body of a relayIntroduce1 message: which service
// is wanted, where it should rendezvous, and the client's ephemeral key for
// the end-to-end handshake (so the rendezvous point relays only ciphertext).
type introduce1Payload struct {
	Onion           string // target hidden-service address
	RendezvousPoint string // relay ID of the client-chosen rendezvous point
	Cookie          []byte // rendezvous cookie
	ClientPub       []byte // client's ephemeral X25519 key for e2e crypto
}

func encodeIntroduce1(p introduce1Payload) []byte {
	buf := writeString(nil, p.Onion)
	buf = writeString(buf, p.RendezvousPoint)
	buf = writeBytes(buf, p.Cookie)
	return writeBytes(buf, p.ClientPub)
}

func decodeIntroduce1(b []byte) (introduce1Payload, error) {
	onion, rest, err := readString(b)
	if err != nil {
		return introduce1Payload{}, fmt.Errorf("onion: decode introduce1 onion: %w", err)
	}
	rp, rest, err := readString(rest)
	if err != nil {
		return introduce1Payload{}, fmt.Errorf("onion: decode introduce1 rendezvous point: %w", err)
	}
	cookie, rest, err := readBytes(rest)
	if err != nil {
		return introduce1Payload{}, fmt.Errorf("onion: decode introduce1 cookie: %w", err)
	}
	clientPub, _, err := readBytes(rest)
	if err != nil {
		return introduce1Payload{}, fmt.Errorf("onion: decode introduce1 client key: %w", err)
	}
	return introduce1Payload{Onion: onion, RendezvousPoint: rp, Cookie: cookie, ClientPub: clientPub}, nil
}

// rendezvous1Payload is the body of a relayRendezvous1 message: the cookie
// identifying the parked client circuit plus the service's ephemeral key,
// which the rendezvous point copies verbatim into RENDEZVOUS2.
type rendezvous1Payload struct {
	Cookie     []byte
	ServicePub []byte
}

func encodeRendezvous1(p rendezvous1Payload) []byte {
	buf := writeBytes(nil, p.Cookie)
	return writeBytes(buf, p.ServicePub)
}

func decodeRendezvous1(b []byte) (rendezvous1Payload, error) {
	cookie, rest, err := readBytes(b)
	if err != nil {
		return rendezvous1Payload{}, fmt.Errorf("onion: decode rendezvous1 cookie: %w", err)
	}
	pub, _, err := readBytes(rest)
	if err != nil {
		return rendezvous1Payload{}, fmt.Errorf("onion: decode rendezvous1 service key: %w", err)
	}
	return rendezvous1Payload{Cookie: cookie, ServicePub: pub}, nil
}
