// Package synth generates synthetic activity traces that stand in for the
// paper's two data sources: the Archive Team Twitter stream grab (Table I)
// and the five scraped Dark Web forums (§V). The generator models the
// "everyday life rhythm" the paper's methodology exploits (§III): a diurnal
// activity curve with a night trough between 1h and 7h, a morning ramp, a
// lunch dip, and an evening peak between 17h and 22h — the shape reported
// for Facebook and YouTube demand in the paper's refs [5], [6] and visible
// in its Figures 1, 2 and 8.
//
// On top of the base rhythm the generator applies per-user variation
// (chronotype shift, hour-level taste noise, heavy-tailed activity volume),
// DST-aware local-to-UTC conversion via internal/tz, and the two
// off-pattern populations the paper discusses: flat-profile bots and shift
// workers (§IV-C).
package synth

import (
	"math"

	"darkcrowd/internal/tz"
)

// Rhythm is a relative propensity of activity per local hour of day. It is
// not normalized: entry values are relative weights with the daily peak
// close to 1.
type Rhythm [tz.HoursPerDay]float64

// DefaultRhythm returns the base diurnal curve. Values follow the shape the
// paper describes: requests "steadily grow from the early morning to the
// afternoon with a peak between 17:00 and 22:00, then the number of
// requests drops rapidly during the night".
func DefaultRhythm() Rhythm {
	return Rhythm{
		0:  0.42, // winding down
		1:  0.20, // night trough starts (1h-7h per the paper)
		2:  0.11,
		3:  0.07,
		4:  0.05, // lowest activity, 4am-5am local (§IV-A)
		5:  0.07,
		6:  0.13,
		7:  0.26, // waking up
		8:  0.45,
		9:  0.58, // first morning peak (Fig. 1)
		10: 0.62,
		11: 0.64,
		12: 0.60,
		13: 0.52, // lunch dip (Fig. 1)
		14: 0.58,
		15: 0.66,
		16: 0.72,
		17: 0.78, // evening growth begins
		18: 0.84,
		19: 0.90,
		20: 0.96,
		21: 1.00, // evening peak (22h local for the German crowd, Fig. 2a)
		22: 0.88,
		23: 0.62,
	}
}

// FlatRhythm returns the uniform propensity of a bot-like user: "users
// whose activity profile are very close to being uniformly distributed over
// all the hours" (§IV-C, Fig. 7).
func FlatRhythm() Rhythm {
	var r Rhythm
	for i := range r {
		r[i] = 0.5
	}
	return r
}

// Shifted returns the rhythm displaced by a possibly fractional number of
// hours (positive = pattern happens later), using circular linear
// interpolation. Used for chronotype variation: "youngsters tend to go to
// sleep later than older people, parents wake up earlier than teenagers"
// (§IV-A).
func (r Rhythm) Shifted(hours float64) Rhythm {
	var out Rhythm
	n := float64(tz.HoursPerDay)
	for h := 0; h < tz.HoursPerDay; h++ {
		src := math.Mod(float64(h)-hours, n)
		if src < 0 {
			src += n
		}
		lo := int(math.Floor(src)) % tz.HoursPerDay
		hi := (lo + 1) % tz.HoursPerDay
		frac := src - math.Floor(src)
		out[h] = r[lo]*(1-frac) + r[hi]*frac
	}
	return out
}

// Scale multiplies every entry by f.
func (r Rhythm) Scale(f float64) Rhythm {
	var out Rhythm
	for i := range r {
		out[i] = r[i] * f
	}
	return out
}

// Total returns the sum of the hourly propensities.
func (r Rhythm) Total() float64 {
	var s float64
	for _, v := range r {
		s += v
	}
	return s
}
