package crawler

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"darkcrowd/internal/trace"
)

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "crawl.ckpt")

	// No file yet: not an error, just no checkpoint.
	ck, err := loadCheckpoint(path, "ds", "http://x")
	if err != nil || ck != nil {
		t.Fatalf("missing checkpoint: ck=%v err=%v", ck, err)
	}

	want := &checkpoint{
		Version:      checkpointVersion,
		DatasetName:  "ds",
		BaseURL:      "http://x",
		ServerOffset: 3 * time.Hour,
		DoneThreads:  []string{"1", "4", "2"},
		Threads:      3,
		Pages:        9,
		Skipped:      1,
		Errors:       []CrawlError{{Thread: "7", Page: 2, Err: "boom"}},
		Posts: []trace.Post{
			{UserID: "alice", Time: time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)},
		},
	}
	if err := want.save(path); err != nil {
		t.Fatal(err)
	}
	got, err := loadCheckpoint(path, "ds", "http://x")
	if err != nil {
		t.Fatal(err)
	}
	if got.ServerOffset != want.ServerOffset || got.Threads != want.Threads ||
		got.Pages != want.Pages || got.Skipped != want.Skipped {
		t.Errorf("loaded %+v, want %+v", got, want)
	}
	if len(got.DoneThreads) != 3 || got.DoneThreads[1] != "4" {
		t.Errorf("done threads = %v", got.DoneThreads)
	}
	if len(got.Posts) != 1 || !got.Posts[0].Time.Equal(want.Posts[0].Time) {
		t.Errorf("posts = %v", got.Posts)
	}

	// A checkpoint for another crawl must refuse to load.
	if _, err := loadCheckpoint(path, "other", "http://x"); err == nil {
		t.Error("dataset-name mismatch must error")
	}
	if _, err := loadCheckpoint(path, "ds", "http://y"); err == nil {
		t.Error("base-URL mismatch must error")
	}

	// Corrupt and versioned-out files fail loudly.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path, "ds", "http://x"); err == nil {
		t.Error("corrupt checkpoint must error")
	}
	stale := &checkpoint{Version: checkpointVersion + 1, DatasetName: "ds", BaseURL: "http://x"}
	if err := stale.save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path, "ds", "http://x"); err == nil {
		t.Error("future version must error")
	}
}

// breakableForum serves a forum but answers 500 for one thread while
// broken — the deterministic "crawl killer" for resume tests.
type breakableForum struct {
	handler http.Handler

	mu       sync.Mutex
	breakID  string
	requests int
}

func (b *breakableForum) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.mu.Lock()
	b.requests++
	broken := b.breakID != "" && r.URL.Path == "/thread" && r.URL.Query().Get("id") == b.breakID
	b.mu.Unlock()
	if broken {
		http.Error(w, "mid-crawl failure", http.StatusInternalServerError)
		return
	}
	b.handler.ServeHTTP(w, r)
}

func (b *breakableForum) setBroken(id string) {
	b.mu.Lock()
	b.breakID = id
	b.mu.Unlock()
}

func TestScrapeResumesFromCheckpoint(t *testing.T) {
	t.Parallel()
	f, _ := buildForum(t, time.Hour, 4)
	bf := &breakableForum{handler: f.Handler()}
	srv := httptest.NewServer(bf)
	defer srv.Close()
	ctx := context.Background()

	// Reference: one uninterrupted crawl.
	ref, _ := newFastCrawler(srv.URL)
	refRes, err := ref.ScrapeContext(ctx, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := refRes.Dataset.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}

	// Kill a crawl mid-flight: one thread fails permanently, and the
	// default zero failure budget aborts the crawl after retries.
	ckptPath := filepath.Join(t.TempDir(), "crawl.ckpt")
	bf.setBroken("3")
	c1, _ := newFastCrawler(srv.URL)
	c1.Retry = RetryPolicy{MaxAttempts: 2}
	_, err = c1.ScrapeResumable(ctx, "ckpt", CheckpointOptions{Path: ckptPath})
	if err == nil {
		t.Fatal("crawl with a permanently failing thread must abort")
	}
	if !strings.Contains(err.Error(), "failure budget exhausted") {
		t.Fatalf("unexpected abort reason: %v", err)
	}
	if _, statErr := os.Stat(ckptPath); statErr != nil {
		t.Fatalf("aborted crawl must leave a checkpoint: %v", statErr)
	}

	// Heal the forum and resume: the finished dataset must be
	// byte-identical to the uninterrupted crawl's.
	bf.setBroken("")
	c2, _ := newFastCrawler(srv.URL)
	res, err := c2.ScrapeResumable(ctx, "ckpt", CheckpointOptions{Path: ckptPath})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Error("resumed crawl must report Resumed")
	}
	if res.Skipped != 0 || len(res.Errors) != 0 {
		t.Errorf("healed resume: skipped=%d errors=%v", res.Skipped, res.Errors)
	}
	var gotCSV bytes.Buffer
	if err := res.Dataset.WriteCSV(&gotCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refCSV.Bytes(), gotCSV.Bytes()) {
		t.Errorf("resumed dataset differs from uninterrupted crawl (%d vs %d bytes)",
			gotCSV.Len(), refCSV.Len())
	}
	if refRes.Threads != res.Threads || refRes.Pages != res.Pages {
		t.Errorf("counters: resumed %d threads/%d pages, reference %d/%d",
			res.Threads, res.Pages, refRes.Threads, refRes.Pages)
	}
	// A completed crawl cleans its checkpoint up.
	if _, statErr := os.Stat(ckptPath); !os.IsNotExist(statErr) {
		t.Error("finished crawl must remove its checkpoint")
	}
}

func TestScrapeSkipsWithinFailureBudget(t *testing.T) {
	t.Parallel()
	f, _ := buildForum(t, 0, 4)
	bf := &breakableForum{handler: f.Handler()}
	srv := httptest.NewServer(bf)
	defer srv.Close()

	bf.setBroken("3")
	c, _ := newFastCrawler(srv.URL)
	c.Retry = RetryPolicy{MaxAttempts: 2}
	c.MaxFailures = 1
	res, err := c.ScrapeContext(context.Background(), "budget")
	if err != nil {
		t.Fatalf("one failing thread within budget must not abort: %v", err)
	}
	if res.Skipped != 1 || len(res.Errors) != 1 {
		t.Fatalf("skipped=%d errors=%v, want exactly the broken thread", res.Skipped, res.Errors)
	}
	if res.Errors[0].Thread != "3" {
		t.Errorf("recorded error %+v, want thread 3", res.Errors[0])
	}
	if !strings.Contains(res.Errors[0].Err, "status 500") {
		t.Errorf("error report should carry the cause: %q", res.Errors[0].Err)
	}
	// The rest of the forum was still collected.
	full, _ := newFastCrawler(srv.URL)
	bf.setBroken("")
	fullRes, err := full.ScrapeContext(context.Background(), "budget")
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset.NumPosts() >= fullRes.Dataset.NumPosts() {
		t.Errorf("skipped crawl has %d posts, full crawl %d", res.Dataset.NumPosts(), fullRes.Dataset.NumPosts())
	}
	if res.Threads != fullRes.Threads-1 {
		t.Errorf("threads = %d, want %d", res.Threads, fullRes.Threads-1)
	}
}
