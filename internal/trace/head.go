package trace

// The mutable ingest head. The columnar Store (and the .dcs snapshot
// format built on it) is deliberately immutable: every reader shares it
// without coordination, and one dataset has exactly one byte
// representation. A long-running ingest daemon needs the complement — a
// small, mutable, concurrency-safe tail that absorbs live posts and is
// periodically compacted into a fresh immutable Dataset. Head is that
// tail: a mutex-guarded Builder stacked on top of an immutable base
// Dataset. Appends go to the Builder; Compact folds the tail into a new
// base (suitable for WriteSnapshot) and resets the tail to empty.

import "sync"

// Head is a concurrency-safe mutable ingest head over an immutable base
// Dataset. All methods are safe for concurrent use. The base Dataset and
// every Dataset returned by Compact are immutable and must not be
// mutated by callers.
type Head struct {
	mu   sync.Mutex
	name string
	base *Dataset // immutable; nil means empty
	tail *Builder // pending posts since the last compaction
}

// NewHead returns a Head named name on top of base (nil for an empty
// head). The caller hands ownership of base to the head and must not
// mutate it afterwards.
func NewHead(name string, base *Dataset) *Head {
	return &Head{name: name, base: base, tail: NewBuilder(0)}
}

// Append records one post in the mutable tail. It returns a *LimitError
// (and records nothing) if the tail would overflow the columnar ordinal
// space — see Builder.TryUser/TryAdd.
func (h *Head) Append(userID string, unixSec int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	u, err := h.tail.TryUser(userID)
	if err != nil {
		return err
	}
	return h.tail.TryAdd(u, unixSec)
}

// Pending returns the number of posts in the mutable tail, i.e. appended
// since the last Compact.
func (h *Head) Pending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tail.NumPosts()
}

// TotalPosts returns the number of posts in the head: compacted base plus
// mutable tail.
func (h *Head) TotalPosts() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.tail.NumPosts()
	if h.base != nil {
		n += len(h.base.Posts)
	}
	return n
}

// Compact folds the mutable tail into a fresh immutable base Dataset and
// resets the tail to empty. The returned Dataset is safe to share, index
// and snapshot (WriteSnapshot) without further coordination — later
// Appends go to the new tail and never touch it. Posts keep arrival
// order: base posts first, then tail posts in append order, exactly the
// sequence a batch ingest of the same stream would hold.
func (h *Head) Compact() *Dataset {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tail.NumPosts() == 0 && h.base != nil {
		return h.base
	}
	fresh := h.tail.Dataset(h.name, false)
	if h.base != nil && len(h.base.Posts) > 0 {
		merged := &Dataset{
			Name:        h.name,
			Posts:       make([]Post, 0, len(h.base.Posts)+len(fresh.Posts)),
			GroundTruth: copyGroundTruth(h.base.GroundTruth),
		}
		merged.Posts = append(merged.Posts, h.base.Posts...)
		merged.Posts = append(merged.Posts, fresh.Posts...)
		fresh = merged
	}
	h.base = fresh
	h.tail = NewBuilder(0)
	return h.base
}
