package pipeline

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"darkcrowd/internal/obs"
	"darkcrowd/internal/trace"
)

// daemonShardCounts is the shard sweep every invariance test runs:
// the single-shard degenerate case, a non-default power of two, the
// default, and a rounded-up odd count.
var daemonShardCounts = []int{1, 2, 16, 5}

// TestDaemonShardInvariance is the serving-path determinism gate: for a
// fixed ingest order, the drained /report and the final .dcs checkpoint
// must be bit-identical at every shard count — sharding is a concurrency
// layout, never an observable behaviour.
func TestDaemonShardInvariance(t *testing.T) {
	dir := t.TempDir()
	path := writeCrowd(t, dir)
	_, wantGeo := batchGeo(t, path)
	ds, err := trace.ReadCSV(path, strings.NewReader(readFile(t, path)))
	if err != nil {
		t.Fatal(err)
	}

	var wantSnap []byte
	for _, shards := range daemonShardCounts {
		snap := fmt.Sprintf("%s/serve-%d.dcs", dir, shards)
		d, err := NewDaemon(ServeConfig{
			Reference:     testReference(t),
			Shards:        shards,
			CompactEvery:  128, // force several mid-stream folds
			SnapshotPath:  snap,
			RefitDebounce: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Odd-sized chunks so folds land mid-request.
		for i := 0; i < len(ds.Posts); i += 211 {
			end := i + 211
			if end > len(ds.Posts) {
				end = len(ds.Posts)
			}
			if _, err := d.Ingest(bytes.NewReader(ndjson(ds.Posts[i:end]))); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := d.Report()
		if err != nil {
			t.Fatal(err)
		}
		gotGeo, err := json.Marshal(rep.Geo)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotGeo) != wantGeo {
			t.Errorf("shards=%d: drained report differs from batch geolocate output", shards)
		}
		if rep.Gen != uint64(len(ds.Posts)) || rep.Posts != len(ds.Posts) {
			t.Errorf("shards=%d: gen/posts = %d/%d, want %d", shards, rep.Gen, rep.Posts, len(ds.Posts))
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		snapBytes := mustReadBytes(t, snap)
		if wantSnap == nil {
			wantSnap = snapBytes
		} else if !bytes.Equal(snapBytes, wantSnap) {
			t.Errorf("shards=%d: final .dcs checkpoint differs from shards=%d", shards, daemonShardCounts[0])
		}
	}
}

// TestDaemonIngestFastSlowLaneEquivalence pins that the zero-alloc decode
// lane and the reflection lane feed identical state: the same posts
// rendered plain (fast lane) and with JSON escapes (slow lane) must yield
// identical reports.
func TestDaemonIngestFastSlowLaneEquivalence(t *testing.T) {
	posts := []trace.Post{}
	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	for u := 0; u < 6; u++ {
		for p := 0; p < 40; p++ {
			posts = append(posts, trace.Post{
				UserID: fmt.Sprintf("user-%d", u),
				Time:   base.Add(time.Duration(u*7+p*13) * time.Hour),
			})
		}
	}
	render := []func(trace.Post) string{
		func(p trace.Post) string { // plain: fast lane
			return fmt.Sprintf("{\"user_id\":%q,\"time\":%q}", p.UserID, p.Time.Format(time.RFC3339))
		},
		func(p trace.Post) string { // escaped user id: slow lane
			return fmt.Sprintf("{\"user_id\":\"\\u0075ser-%s\",\"time\":%q}", p.UserID[5:], p.Time.Format(time.RFC3339))
		},
	}
	var want string
	for i, r := range render {
		d, err := NewDaemon(ServeConfig{Reference: testReference(t), MinPosts: 3, SkipPolish: true, RefitDebounce: -1})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		for _, p := range posts {
			b.WriteString(r(p))
			b.WriteByte('\n')
		}
		res, err := d.Ingest(&b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted != len(posts) || res.Rejected != 0 {
			t.Fatalf("lane %d: accepted/rejected = %d/%d, want %d/0", i, res.Accepted, res.Rejected, len(posts))
		}
		rep, err := d.Report()
		if err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(rep.Geo)
		if want == "" {
			want = string(got)
		} else if string(got) != want {
			t.Errorf("lane %d: report differs from plain-lane report", i)
		}
		d.Close()
	}
}

// TestDaemonIngestErrorPaths covers the request-abort HTTP statuses the
// streaming API promises: 400 on a blown malformed-line budget, 413 on an
// oversized NDJSON line — with already-accepted posts kept either way.
func TestDaemonIngestErrorPaths(t *testing.T) {
	d, err := NewDaemon(ServeConfig{
		Reference:     testReference(t),
		MaxBadLines:   2,
		RefitDebounce: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/ingest", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Budget: one good line, then three garbage lines against a budget of
	// two. The request fails 400 but the good post sticks.
	body := "{\"user_id\":\"alice\",\"time\":\"2018-03-01T12:00:00Z\"}\n" +
		"garbage one\ngarbage two\ngarbage three\n"
	if resp := post([]byte(body)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("blown budget status = %d, want 400", resp.StatusCode)
	}
	if h := d.Healthz(); h.Posts != 1 || h.Rejected != 3 {
		t.Fatalf("after budget abort: posts/rejected = %d/%d, want 1/3", h.Posts, h.Rejected)
	}

	// Direct-call error identity, for callers that branch on the sentinel.
	if _, err := d.Ingest(strings.NewReader("x\nx\nx\n")); !errors.Is(err, ErrBadLineBudget) {
		t.Fatalf("budget error = %v, want ErrBadLineBudget", err)
	}

	// Oversized line: a single line over maxIngestLine aborts with 413.
	big := bytes.Repeat([]byte("a"), maxIngestLine+16)
	line := append([]byte("{\"user_id\":\""), big...)
	line = append(line, []byte("\",\"time\":\"2018-03-01T12:00:00Z\"}\n")...)
	if resp := post(line); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized line status = %d, want 413", resp.StatusCode)
	}
	if _, err := d.Ingest(bytes.NewReader(line)); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("oversized error = %v, want ErrLineTooLong", err)
	}

	// Unlimited budget: negative MaxBadLines scans any amount of garbage.
	dU, err := NewDaemon(ServeConfig{Reference: testReference(t), MaxBadLines: -1, RefitDebounce: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer dU.Close()
	res, err := dU.Ingest(strings.NewReader(strings.Repeat("garbage\n", 64)))
	if err != nil || res.Rejected != 64 {
		t.Fatalf("unlimited budget: rejected=%d err=%v, want 64/nil", res.Rejected, err)
	}
}

// TestDaemonShardedConcurrentStress hammers one daemon per shard count
// with overlapping writers (every writer touches every user, maximizing
// same-shard contention), concurrent /place and /healthz readers, and an
// aggressive compaction threshold. Run under -race this is the sharded
// hot path's consistency gate; drained totals are the assertion.
func TestDaemonShardedConcurrentStress(t *testing.T) {
	const users = 12
	const perWriter = 300
	const writers = 4
	for _, shards := range daemonShardCounts {
		d, err := NewDaemon(ServeConfig{
			Reference:     testReference(t),
			Shards:        shards,
			MinPosts:      3,
			SkipPolish:    true,
			CompactEvery:  64,
			RefitDebounce: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var b bytes.Buffer
				for i := 0; i < perWriter; i++ {
					fmt.Fprintf(&b, "{\"user_id\":\"user-%d\",\"time\":%q}\n",
						i%users, base.Add(time.Duration(w*perWriter+i)*time.Hour).Format(time.RFC3339))
					if b.Len() > 512 {
						if _, err := d.Ingest(bytes.NewReader(b.Bytes())); err != nil {
							t.Error(err)
							return
						}
						b.Reset()
					}
				}
				if _, err := d.Ingest(bytes.NewReader(b.Bytes())); err != nil {
					t.Error(err)
				}
			}(w)
		}
		stop := make(chan struct{})
		var readers sync.WaitGroup
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func(r int) {
				defer readers.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					d.Place(fmt.Sprintf("user-%d", i%users))
					d.Healthz()
					if i%16 == 0 {
						d.Report() // any error is fine mid-stream
					}
				}
			}(r)
		}
		wg.Wait()
		close(stop)
		readers.Wait()

		h := d.Healthz()
		if h.Posts != writers*perWriter || h.Gen != uint64(writers*perWriter) {
			t.Errorf("shards=%d: posts/gen = %d/%d, want %d", shards, h.Posts, h.Gen, writers*perWriter)
		}
		if h.Users != users {
			t.Errorf("shards=%d: users = %d, want %d", shards, h.Users, users)
		}
		rep, err := d.Report()
		if err != nil {
			t.Fatalf("shards=%d: drained report: %v", shards, err)
		}
		if rep.Posts != writers*perWriter || rep.Users != users {
			t.Errorf("shards=%d: report posts/users = %d/%d, want %d/%d",
				shards, rep.Posts, rep.Users, writers*perWriter, users)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDaemonMetricsLatencies checks the per-endpoint latency wiring: a
// served request shows up in the http.*.ns histograms on /metrics.
func TestDaemonMetricsLatencies(t *testing.T) {
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	d, err := NewDaemon(ServeConfig{Reference: testReference(t), RefitDebounce: -1, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	mustPost(t, srv.URL, []byte("{\"user_id\":\"alice\",\"time\":\"2018-03-01T12:00:00Z\"}\n"))
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	snap := o.Metrics.Snapshot()
	for _, name := range []string{"http.ingest.ns", "http.healthz.ns"} {
		ls, ok := snap.Latencies[name]
		if !ok || ls.Count == 0 {
			t.Errorf("latency histogram %q missing or empty: %+v", name, ls)
		}
		if ls.Count > 0 && ls.P99 <= 0 {
			t.Errorf("latency histogram %q has no p99: %+v", name, ls)
		}
	}
}
