// Hemisphere example: the §V-F daylight-saving-time test.
//
// Generates one heavy user in each of four countries — two northern DST
// countries, one southern, one without DST — and shows how comparing the
// October-March activity profile against the March-October profile
// shifted by ±1 hour reveals the hemisphere.
//
//	go run ./examples/hemisphere
package main

import (
	"fmt"
	"log"

	"darkcrowd"
	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/tz"
)

func main() {
	cases := []struct {
		code string
		note string
	}{
		{"de", "Germany: northern DST (late March to late October)"},
		{"uk", "United Kingdom: northern DST"},
		{"br", "Brazil: southern DST (October to February)"},
		{"jp", "Japan: no daylight saving time"},
	}
	for i, tc := range cases {
		region, err := tz.ByCode(tc.code)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := synth.GenerateCrowd(int64(100+i), synth.CrowdConfig{
			Name:   tc.code,
			Groups: []synth.Group{{Region: region, Users: 1, PostsPerUser: 4000}},
		})
		if err != nil {
			log.Fatal(err)
		}
		users := ds.Users()
		posts := ds.ByUser()[users[0]]

		// Detailed verdict via the internal API...
		verdict, err := geoloc.ClassifyHemisphere(posts, geoloc.HemisphereOptions{})
		if err != nil {
			log.Fatal(err)
		}
		// ...and the one-call public API.
		ruled, err := darkcrowd.ClassifyHemisphere(posts)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Println(tc.note)
		fmt.Printf("  posts: %d Oct-Mar, %d Mar-Oct\n", verdict.OctMarPosts, verdict.MarOctPosts)
		fmt.Printf("  EMD(OctMar, MarOct shifted +1h) = %.3f   <- matches for northern users\n", verdict.DistanceForward)
		fmt.Printf("  EMD(OctMar, MarOct unshifted)   = %.3f\n", verdict.DistanceUnshifted)
		fmt.Printf("  EMD(OctMar, MarOct shifted -1h) = %.3f   <- matches for southern users\n", verdict.DistanceBackward)
		fmt.Printf("  best fractional alignment: %+.2f h\n", verdict.BestShift)
		fmt.Printf("  => ruled %s (public API agrees: %s)\n\n", verdict.Hemisphere, ruled)
	}
}
