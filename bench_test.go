package darkcrowd

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper (the workload that regenerates it), plus micro-benchmarks of
// the primitives (EMD, EM, Gaussian fit) and the substrates (onion
// circuits, forum scraping, crowd synthesis).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Shared inputs are built once and reused across benchmark iterations.

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/crawler"
	"darkcrowd/internal/experiments"
	"darkcrowd/internal/forum"
	"darkcrowd/internal/onion"
	"darkcrowd/internal/stats"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
	"darkcrowd/internal/viz"
)

// benchState holds inputs shared by the benchmarks, built once.
type benchState struct {
	twitter  *trace.Dataset
	generic  *profile.GenericResult
	german   map[string]profile.Profile
	french   map[string]profile.Profile
	malay    map[string]profile.Profile
	fig6b    *trace.Dataset
	heavyDE  []trace.Post
	profileA profile.Profile
	profileB profile.Profile
}

var (
	benchOnce sync.Once
	bench     *benchState
	benchErr  error
)

func benchSetup(b *testing.B) *benchState {
	b.Helper()
	benchOnce.Do(func() {
		s := &benchState{}
		s.twitter, benchErr = synth.TwitterDataset(2018, synth.TwitterOptions{Scale: 40})
		if benchErr != nil {
			return
		}
		s.generic, benchErr = profile.BuildGeneric(s.twitter, profile.GenericOptions{})
		if benchErr != nil {
			return
		}
		countryProfiles := func(code string) (map[string]profile.Profile, error) {
			sub := s.twitter.FilterUsers(func(u string) bool { return s.twitter.GroundTruth[u] == code })
			return profile.BuildUserProfiles(sub, profile.BuildOptions{})
		}
		if s.german, benchErr = countryProfiles("de"); benchErr != nil {
			return
		}
		if s.french, benchErr = countryProfiles("fr"); benchErr != nil {
			return
		}
		if s.malay, benchErr = countryProfiles("my"); benchErr != nil {
			return
		}
		if s.fig6b, benchErr = synth.Fig6bDataset(2080, 60); benchErr != nil {
			return
		}
		de, err := tz.ByCode("de")
		if err != nil {
			benchErr = err
			return
		}
		heavy, err := synth.GenerateCrowd(2081, synth.CrowdConfig{
			Name:   "bench-heavy",
			Groups: []synth.Group{{Region: de, Users: 1, PostsPerUser: 4000}},
		})
		if err != nil {
			benchErr = err
			return
		}
		for _, posts := range heavy.ByUser() {
			s.heavyDE = posts
		}
		s.profileA = s.generic.Generic
		s.profileB = s.generic.Generic.Shift(5)
		bench = s
	})
	if benchErr != nil {
		b.Fatalf("bench setup: %v", benchErr)
	}
	return bench
}

// BenchmarkTableI_DatasetAndThreshold regenerates Table I's quantity: the
// per-region active-user census (profile building + 30-post threshold over
// the whole labelled dataset).
func BenchmarkTableI_DatasetAndThreshold(b *testing.B) {
	s := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := profile.BuildGeneric(s.twitter, profile.GenericOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1_UserProfile regenerates Figure 1's quantity: one user's
// Eq. 1 profile from a year of posts.
func BenchmarkFig1_UserProfile(b *testing.B) {
	s := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := profile.FromPosts(s.heavyDE, profile.UTCHours()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_ProfileCorrelation regenerates Figure 2's comparison: the
// Pearson correlation between two population profiles.
func BenchmarkFig2_ProfileCorrelation(b *testing.B) {
	s := benchSetup(b)
	german := s.generic.PerRegion["de"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := german.Pearson(s.generic.Generic); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPlacement(b *testing.B, profiles map[string]profile.Profile, generic profile.Profile) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := geoloc.PlaceUsers(profiles, generic, geoloc.PlaceOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_GermanPlacement regenerates Figure 3: EMD placement of the
// German crowd across the 24 zones.
func BenchmarkFig3_GermanPlacement(b *testing.B) {
	s := benchSetup(b)
	benchPlacement(b, s.german, s.generic.Generic)
}

// BenchmarkFig4_FrenchPlacement regenerates Figure 4.
func BenchmarkFig4_FrenchPlacement(b *testing.B) {
	s := benchSetup(b)
	benchPlacement(b, s.french, s.generic.Generic)
}

// BenchmarkFig5_MalaysianPlacement regenerates Figure 5.
func BenchmarkFig5_MalaysianPlacement(b *testing.B) {
	s := benchSetup(b)
	benchPlacement(b, s.malay, s.generic.Generic)
}

// BenchmarkFig6_MixtureGeolocation regenerates Figure 6: GMM uncovering of
// a three-region synthetic crowd (placement + EM + BIC selection).
func BenchmarkFig6_MixtureGeolocation(b *testing.B) {
	s := benchSetup(b)
	profiles, err := profile.BuildUserProfiles(s.fig6b, profile.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := geoloc.Geolocate(profiles, s.generic.Generic, geoloc.GeolocateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7_Polishing regenerates Figure 7's operation: iterative
// flat-profile removal over a bot-contaminated crowd.
func BenchmarkFig7_Polishing(b *testing.B) {
	s := benchSetup(b)
	de, err := tz.ByCode("de")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := synth.GenerateCrowd(2082, synth.CrowdConfig{
		Name: "bench-polish",
		Groups: []synth.Group{
			{Region: de, Users: 40, PostsPerUser: 120},
			{Region: de, Users: 10, PostsPerUser: 200, Kind: synth.KindBot, IDPrefix: "bot"},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	profiles, err := profile.BuildUserProfiles(ds, profile.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Polish(profiles, s.generic.Generic, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_FitMetrics regenerates Table II's quantity: single
// Gaussian least-squares fit plus point-by-point distance statistics.
func BenchmarkTableII_FitMetrics(b *testing.B) {
	s := benchSetup(b)
	placement, err := geoloc.PlaceUsers(s.malay, s.generic.Generic, geoloc.PlaceOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := geoloc.FitSingle(placement); err != nil {
			b.Fatal(err)
		}
	}
}

// benchForumPipeline runs the full §V pipeline (synthesize, host, scrape,
// polish, geolocate) for one forum at reduced scale.
func benchForumPipeline(b *testing.B, name string) {
	b.Helper()
	s := benchSetup(b)
	spec, err := synth.ForumSpecByName(name)
	if err != nil {
		b.Fatal(err)
	}
	spec.Users /= 8
	if spec.Users < 20 {
		spec.Users = 20
	}
	spec.Posts = spec.Users * 60
	truth, err := synth.ForumCrowd(2083, spec)
	if err != nil {
		b.Fatal(err)
	}
	f := forum.New(forum.Config{
		Name:         spec.Name,
		ServerOffset: time.Duration(spec.ServerOffsetHours) * time.Hour,
		PageSize:     50,
	})
	if err := f.ImportCrowd(truth, forum.ImportOptions{}); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &crawler.Crawler{BaseURL: srv.URL}
		res, err := c.Scrape(spec.Name)
		if err != nil {
			b.Fatal(err)
		}
		profiles, err := profile.BuildUserProfiles(res.Dataset, profile.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		polished, err := profile.Polish(profiles, s.generic.Generic, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := geoloc.Geolocate(polished.Kept, s.generic.Generic, geoloc.GeolocateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9_CRDClubPipeline regenerates Figure 9's workload.
func BenchmarkFig9_CRDClubPipeline(b *testing.B) {
	benchForumPipeline(b, "CRD Club")
}

// BenchmarkFig10_IDCPipeline regenerates Figure 10's workload.
func BenchmarkFig10_IDCPipeline(b *testing.B) {
	benchForumPipeline(b, "Italian DarkNet Community")
}

// BenchmarkFig11_DreamMarketPipeline regenerates Figure 11's workload.
func BenchmarkFig11_DreamMarketPipeline(b *testing.B) {
	benchForumPipeline(b, "Dream Market")
}

// BenchmarkFig12_MajesticGardenPipeline regenerates Figure 12's workload.
func BenchmarkFig12_MajesticGardenPipeline(b *testing.B) {
	benchForumPipeline(b, "The Majestic Garden")
}

// BenchmarkFig13_PedoSupportPipeline regenerates Figure 13's workload.
func BenchmarkFig13_PedoSupportPipeline(b *testing.B) {
	benchForumPipeline(b, "Pedo Support Community")
}

// BenchmarkFig8_ForumProfilePearson regenerates Figure 8's quantity: a
// scraped population profile correlated against the generic profile.
func BenchmarkFig8_ForumProfilePearson(b *testing.B) {
	s := benchSetup(b)
	ru, err := tz.ByCode("ru-msk")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := synth.GenerateCrowd(2084, synth.CrowdConfig{
		Name:   "bench-crd",
		Groups: []synth.Group{{Region: ru, Users: 40, PostsPerUser: 80}},
	})
	if err != nil {
		b.Fatal(err)
	}
	profiles, err := profile.BuildUserProfiles(ds, profile.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var list []profile.Profile
	for _, id := range profile.SortedUserIDs(profiles) {
		list = append(list, profiles[id])
	}
	pop, err := profile.Aggregate(list)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pop.ToLocal(3).Pearson(s.generic.Generic); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHemisphere_Classification regenerates the §V-F workload: the
// DST-based hemisphere test on one heavy user.
func BenchmarkHemisphere_Classification(b *testing.B) {
	s := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := geoloc.ClassifyHemisphere(s.heavyDE, geoloc.HemisphereOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- primitive micro-benchmarks ---

// BenchmarkEMDCircular measures the placement distance primitive.
func BenchmarkEMDCircular(b *testing.B) {
	s := benchSetup(b)
	p := s.profileA.Slice()
	q := s.profileB.Slice()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := stats.EMDCircular(p, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEMDLinear measures the ablation baseline distance.
func BenchmarkEMDLinear(b *testing.B) {
	s := benchSetup(b)
	p := s.profileA.Slice()
	q := s.profileB.Slice()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := stats.EMDLinear(p, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGaussianFit measures the single-Gaussian least-squares fit.
func BenchmarkGaussianFit(b *testing.B) {
	truth := stats.Mixture{{Weight: 1, Mean: 13, Sigma: 2.5}}
	ys := truth.Curve(24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := stats.FitGaussianCircular(ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEMSelection measures EM with BIC model selection on 500
// placement samples.
func BenchmarkEMSelection(b *testing.B) {
	samples := make([]float64, 0, 500)
	for i := 0; i < 500; i++ {
		switch i % 3 {
		case 0:
			samples = append(samples, float64(5+i%3))
		case 1:
			samples = append(samples, float64(12+i%3))
		default:
			samples = append(samples, float64(19+i%3))
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := stats.SelectMixture(samples, 4, stats.EMConfig{Period: 24}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthYearOfPosts measures crowd synthesis (one user, one year).
func BenchmarkSynthYearOfPosts(b *testing.B) {
	de, err := tz.ByCode("de")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := synth.GenerateCrowd(int64(i), synth.CrowdConfig{
			Name:   "bench",
			Groups: []synth.Group{{Region: de, Users: 1, PostsPerUser: 90}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnionRoundTrip measures one request/response over an
// established hidden-service stream (three hops each way plus the
// rendezvous splice).
func BenchmarkOnionRoundTrip(b *testing.B) {
	n := onion.NewNetwork(1)
	defer n.Close()
	if _, err := n.AddRelays(8); err != nil {
		b.Fatal(err)
	}
	svc, err := onion.HostService(n, "bench-svc", 2)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	go func() {
		ln := svc.Listener()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 64)
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					if _, err := conn.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	client, err := onion.NewClient(n, "bench-client")
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	conn, err := client.Dial(svc.Onion())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	msg := []byte("ping over three hops")
	buf := make([]byte, len(msg))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(msg); err != nil {
			b.Fatal(err)
		}
		total := 0
		for total < len(buf) {
			n, err := conn.Read(buf[total:])
			if err != nil {
				b.Fatal(err)
			}
			total += n
		}
	}
}

// BenchmarkCrawlerScrape measures a full forum scrape over local HTTP.
func BenchmarkCrawlerScrape(b *testing.B) {
	it, err := tz.ByCode("it")
	if err != nil {
		b.Fatal(err)
	}
	crowd, err := synth.GenerateCrowd(2085, synth.CrowdConfig{
		Name:   "bench-scrape",
		Groups: []synth.Group{{Region: it, Users: 20, PostsPerUser: 60}},
	})
	if err != nil {
		b.Fatal(err)
	}
	f := forum.New(forum.Config{Name: "bench", PageSize: 50})
	if err := f.ImportCrowd(crowd, forum.ImportOptions{}); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &crawler.Crawler{BaseURL: srv.URL}
		if _, err := c.Scrape("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentTableII runs the complete Table II regeneration (the
// heaviest composite experiment) once per iteration.
func BenchmarkExperimentTableII(b *testing.B) {
	lab := experiments.NewLab(experiments.Config{TwitterScale: 200, ForumScale: 8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Run("table2"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorPoll measures one full monitor sweep of a mid-size forum
// (the §VII no-timestamps fallback).
func BenchmarkMonitorPoll(b *testing.B) {
	it, err := tz.ByCode("it")
	if err != nil {
		b.Fatal(err)
	}
	crowd, err := synth.GenerateCrowd(2086, synth.CrowdConfig{
		Name:   "bench-monitor",
		Groups: []synth.Group{{Region: it, Users: 15, PostsPerUser: 60}},
	})
	if err != nil {
		b.Fatal(err)
	}
	f := forum.New(forum.Config{Name: "bench", HideTimestamps: true, PageSize: 100})
	if err := f.ImportCrowd(crowd, forum.ImportOptions{}); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	m := crawler.NewMonitor(&crawler.Crawler{BaseURL: srv.URL}, "bench")
	m.Clock = func() time.Time { return time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Poll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVGRender measures rendering one placement figure.
func BenchmarkSVGRender(b *testing.B) {
	chart := viz.BarChart{
		Title:   "bench",
		Labels:  viz.ZoneLabels(),
		Values:  make([]float64, 24),
		Overlay: make([]float64, 24),
	}
	for i := range chart.Values {
		chart.Values[i] = float64(i%5) / 10
		chart.Overlay[i] = float64(i%7) / 12
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := chart.SVG(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEntropy measures the profile-entropy primitive.
func BenchmarkEntropy(b *testing.B) {
	s := benchSetup(b)
	p := s.profileA.Slice()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Entropy(p); err != nil {
			b.Fatal(err)
		}
	}
}
