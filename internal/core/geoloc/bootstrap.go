package geoloc

// Bootstrap confidence intervals on the crowd mixture (ISSUE 10): resample
// the crowd's users with replacement, re-place each resampled user from the
// placement already in hand (per-user placement depends only on the user's
// profile and the generic reference, so a user's zone index is a cached row
// — no EMD recompute), re-fit the mixture at the point estimate's component
// count, and read percentile intervals off the replicate distribution of
// each component's weight and mean.
//
// Replicates are embarrassingly parallel and run on internal/par under the
// repo-wide determinism contract: every replicate seeds its own counter-based
// RNG stream from (Seed, replicate index), writes only its own index-addressed
// result slot, and the percentile reduction happens after the join on one
// goroutine — so the intervals are bit-identical at any worker count.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"darkcrowd/internal/obs"
	"darkcrowd/internal/par"
	"darkcrowd/internal/stats"
	"darkcrowd/internal/tz"
)

// BootstrapOptions configures BootstrapMixtureCI.
type BootstrapOptions struct {
	// Replicates is the number of bootstrap resamples. Defaults to 200.
	Replicates int
	// Seed seeds the resampling RNG. The RNG is a package-local splitmix64
	// (not math/rand), so a (Seed, Replicates) pair produces the same
	// intervals on every Go version and platform.
	Seed int64
	// Level is the two-sided confidence level in (0, 1). Defaults to 0.95.
	Level float64
	// Parallelism is the number of workers running replicates: 0 uses every
	// core, 1 forces the sequential path. The intervals are bit-identical
	// for every setting.
	Parallelism int
	// EM tunes the per-replicate refits; Period is forced to 24. Defaults
	// match the point fit's defaults.
	EM stats.EMConfig
	// Context, when non-nil, cancels a long bootstrap between replicates.
	Context context.Context
	// Obs, when non-nil, receives a "bootstrap" stage span with per-shard
	// timings plus replicate counters. Observation only.
	Obs *obs.Observer
}

// ComponentCI is the bootstrap interval around one point-estimate mixture
// component. Offsets are UTC offsets on the real line centered on the point
// estimate (not re-wrapped into (-12, +12]), so Lo <= Offset <= Hi always
// holds and an interval straddling the date line stays readable.
type ComponentCI struct {
	Weight   float64 `json:"weight"`
	WeightLo float64 `json:"weight_lo"`
	WeightHi float64 `json:"weight_hi"`
	Offset   float64 `json:"offset"`
	OffsetLo float64 `json:"offset_lo"`
	OffsetHi float64 `json:"offset_hi"`
}

// BootstrapResult is the full bootstrap report, serialized into the
// geolocation JSON under "confidence" when the feature is on.
type BootstrapResult struct {
	// Replicates and Seed pin the resampling so a verifier can regenerate
	// the intervals bit-for-bit.
	Replicates int   `json:"replicates"`
	Seed       int64 `json:"seed"`
	// Level is the two-sided confidence level the intervals cover.
	Level float64 `json:"level"`
	// Components aligns index-for-index with Geolocation.Components.
	Components []ComponentCI `json:"components"`
	// Failed counts replicates whose refit failed outright (not merely
	// degraded); they are excluded from the percentile computation.
	Failed int `json:"failed,omitempty"`
}

// splitmix64 advances the state and returns the next value of the stream.
// The generator is Steele et al.'s SplitMix64 — tiny, fast, and fully
// specified here so bootstrap resampling never depends on math/rand
// internals that may change between Go releases.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// boundedRand maps one splitmix64 draw onto [0, n) by the Lemire
// multiply-shift reduction. The residual modulo bias is < n/2^64 —
// unmeasurable at crowd sizes — and the mapping is exact integer
// arithmetic, identical on every platform.
func boundedRand(state *uint64, n uint64) uint64 {
	hi, _ := bits.Mul64(splitmix64(state), n)
	return hi
}

// replicateState derives the RNG state for one replicate from the run seed.
// Seeding each replicate independently (rather than sharing one sequential
// stream) is what lets replicates run on any worker in any order and still
// draw the same resample.
func replicateState(seed int64, r int) uint64 {
	state := uint64(seed) ^ 0x6a09e667f3bcc909 // avoid the all-zeros fixed point for seed 0
	state += 0x9e3779b97f4a7c15 * uint64(r+1)
	// One warm-up draw decorrelates adjacent replicate streams.
	splitmix64(&state)
	return state
}

// replicateFit is one replicate's matched per-component readout.
type replicateFit struct {
	weights []float64 // resampled component weights, point-component order
	deltas  []float64 // circular mean deltas vs the point components, zones
	ok      bool
}

// BootstrapMixtureCI computes percentile bootstrap confidence intervals for
// the weights and means of an already-fitted mixture. placement supplies
// the per-user zone rows to resample; point is the point-estimate mixture
// whose components the intervals describe (typically Geolocation.Mixture).
//
// Each replicate refits at fixed k = len(point) (no BIC race, no tidying:
// the question is "how stable are *these* components", not "how many are
// there") and its components are matched to the point components greedily
// by circular mean distance. Degraded refits (non-convergence) stay in the
// pool — discarding them would bias the intervals narrow; refits that fail
// outright or collapse to non-finite parameters are counted in Failed and
// excluded.
func BootstrapMixtureCI(placement *Placement, point stats.Mixture, opts BootstrapOptions) (*BootstrapResult, error) {
	if placement == nil || len(placement.Assignments) == 0 {
		return nil, errors.New("geoloc: bootstrap needs a non-empty placement")
	}
	if len(point) == 0 {
		return nil, errors.New("geoloc: bootstrap needs a fitted mixture")
	}
	if opts.Replicates == 0 {
		opts.Replicates = 200
	}
	if opts.Replicates < 0 {
		return nil, fmt.Errorf("geoloc: bootstrap replicates must be positive, got %d", opts.Replicates)
	}
	if opts.Level == 0 {
		opts.Level = 0.95
	}
	if opts.Level <= 0 || opts.Level >= 1 {
		return nil, fmt.Errorf("geoloc: bootstrap level must be in (0,1), got %g", opts.Level)
	}
	samples := placement.Samples()
	n := len(samples)
	k := len(point)
	if n < k {
		return nil, fmt.Errorf("geoloc: %d users cannot support %d bootstrap components", n, k)
	}
	emCfg := opts.EM
	emCfg.Period = tz.HoursPerDay
	emCfg.Obs = nil // per-replicate EM diagnostics would be pure noise

	o := opts.Obs.Stage("bootstrap")
	defer o.End()
	o.SetWorkers(par.Workers(opts.Parallelism, opts.Replicates))
	var so par.ShardObserver
	if sp := o.SpanRef(); sp != nil {
		so = sp
	}
	fits := make([]replicateFit, opts.Replicates)
	err := par.RangesObserved(opts.Context, opts.Parallelism, opts.Replicates, func(start, end int) error {
		resampled := make([]float64, n)
		for r := start; r < end; r++ {
			if opts.Context != nil {
				if err := opts.Context.Err(); err != nil {
					return err
				}
			}
			state := replicateState(opts.Seed, r)
			for i := range resampled {
				resampled[i] = samples[boundedRand(&state, uint64(n))]
			}
			res, err := stats.FitMixtureEM(resampled, k, emCfg)
			var deg *stats.FitDegradedError
			if errors.As(err, &deg) {
				res, err = deg.Result, nil
			}
			if err != nil {
				continue // counted as Failed after the join
			}
			fits[r] = matchToPoint(point, res.Mixture)
		}
		return nil
	}, so)
	if err != nil {
		return nil, err
	}

	out := &BootstrapResult{
		Replicates: opts.Replicates,
		Seed:       opts.Seed,
		Level:      opts.Level,
		Components: make([]ComponentCI, k),
	}
	weights := make([][]float64, k)
	deltas := make([][]float64, k)
	for _, f := range fits {
		if !f.ok {
			out.Failed++
			continue
		}
		for j := 0; j < k; j++ {
			weights[j] = append(weights[j], f.weights[j])
			deltas[j] = append(deltas[j], f.deltas[j])
		}
	}
	if good := opts.Replicates - out.Failed; good < 2 {
		return nil, fmt.Errorf("geoloc: only %d of %d bootstrap replicates usable", good, opts.Replicates)
	}
	alpha := (1 - opts.Level) / 2
	for j := 0; j < k; j++ {
		sort.Float64s(weights[j])
		sort.Float64s(deltas[j])
		offset := zoneAxisToOffset(point[j].Mean)
		out.Components[j] = ComponentCI{
			Weight:   point[j].Weight,
			WeightLo: percentile(weights[j], alpha),
			WeightHi: percentile(weights[j], 1-alpha),
			Offset:   offset,
			OffsetLo: offset + percentile(deltas[j], alpha),
			OffsetHi: offset + percentile(deltas[j], 1-alpha),
		}
	}
	o.Counter("bootstrap.replicates").Add(int64(opts.Replicates))
	o.Counter("bootstrap.failed").Add(int64(out.Failed))
	return out, nil
}

// matchToPoint pairs a replicate's components with the point components,
// greedily by circular mean distance in point order (point components are
// sorted heaviest-first, so the dominant region claims its nearest refit
// component before lighter ones choose). A refit with a non-finite matched
// parameter marks the whole replicate unusable.
func matchToPoint(point, fit stats.Mixture) replicateFit {
	k := len(point)
	rf := replicateFit{weights: make([]float64, k), deltas: make([]float64, k), ok: true}
	used := make([]bool, len(fit))
	for j := 0; j < k; j++ {
		best, bestD := -1, math.Inf(1)
		for i := range fit {
			if used[i] {
				continue
			}
			d := math.Abs(stats.CircularDiff(fit[i].Mean, point[j].Mean, tz.HoursPerDay))
			if d < bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			rf.ok = false
			return rf
		}
		used[best] = true
		w, dm := fit[best].Weight, stats.CircularDiff(fit[best].Mean, point[j].Mean, tz.HoursPerDay)
		if math.IsNaN(w) || math.IsInf(w, 0) || math.IsNaN(dm) || math.IsInf(dm, 0) {
			rf.ok = false
			return rf
		}
		rf.weights[j], rf.deltas[j] = w, dm
	}
	return rf
}

// percentile reads the q-th percentile off an ascending-sorted slice with
// linear interpolation between order statistics. Deterministic given the
// slice; the slice is always built in replicate order and sorted, so the
// result is independent of worker scheduling.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		return sorted[0]
	}
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
