package main

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestForumsimEndToEnd(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-forum", "Italian DarkNet Community",
		"-scale", "8",
		"-relays", "8",
		"-seed", "9",
		"-twitter-scale", "200",
	}, &out)
	if err != nil {
		t.Fatalf("forumsim run: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"Italian DarkNet Community",
		"hidden service",
		"measured server offset",
		"geolocation of the",
		"component 1:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestForumsimServeMode(t *testing.T) {
	type hooked struct {
		addr string
		stop context.CancelFunc
	}
	ready := make(chan hooked, 1)
	serveTestHook = func(addr string, stop context.CancelFunc) {
		ready <- hooked{addr, stop}
	}
	defer func() { serveTestHook = nil }()

	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-forum", "Italian DarkNet Community",
			"-scale", "8",
			"-seed", "9",
			"-serve", "127.0.0.1:0",
		}, &out)
	}()

	var h hooked
	select {
	case h = <-ready:
	case err := <-done:
		t.Fatalf("run exited before serving: %v\n%s", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for serve to start")
	}

	resp, err := http.Get("http://" + h.addr + "/")
	if err != nil {
		t.Fatalf("GET forum index: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forum index status = %d", resp.StatusCode)
	}

	h.stop() // stands in for SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve shutdown: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for graceful shutdown")
	}
	s := out.String()
	for _, want := range []string{"on http://127.0.0.1:", "shutting down"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "http://127.0.0.1:0") {
		t.Errorf("advertised URL kept the unresolved :0 port:\n%s", s)
	}
}

func TestForumsimUnknownForum(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-forum", "No Such Forum"}, &out); err == nil {
		t.Error("unknown forum should fail")
	}
}

func TestForumsimBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "not-a-number"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}
