package trace

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to both the strict and the lenient CSV
// reader. Invariants:
//
//   - neither reader may ever panic, whatever the input;
//   - the lenient reader never keeps more rows than it saw, and its
//     quarantine sample never exceeds the cap;
//   - any input the strict reader accepts is a valid dataset, and encoding
//     it with WriteCSV and reading it back reproduces the posts exactly,
//     with the re-encoding byte-identical (WriteCSV output is a fixpoint).
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("user_id,time_rfc3339\nu1,2017-03-01T10:00:00Z\n"))
	f.Add([]byte("user_id,time_rfc3339\n\"u,1\",2017-03-01T10:00:00Z\nu2,2017-12-31T23:59:59Z\n"))
	f.Add([]byte("user_id,time_rfc3339\nu1,notatime\nu2,2017-03-01T10:00:00Z\n"))
	f.Add([]byte("user_id,time_rfc3339\nu1,2017-03-01T10:00:00+02:00\n"))
	f.Add([]byte("user_id,time_rfc3339"))
	f.Add([]byte(""))
	f.Add([]byte("\"\n\x00,"))
	f.Fuzz(func(t *testing.T, data []byte) {
		strict, err := ReadCSV("fuzz", bytes.NewReader(data))
		lenient, report, lerr := ReadCSVOpts("fuzz", bytes.NewReader(data),
			ReadCSVOptions{Lenient: true, MaxBadRows: 1 << 20, SampleCap: 4})
		if lerr == nil && len(report.Rows) > 4 {
			t.Fatalf("quarantine sample %d rows, cap 4", len(report.Rows))
		}
		if err != nil {
			return
		}
		// Strict success implies lenient success with an empty quarantine
		// and the identical dataset.
		if lerr != nil {
			t.Fatalf("strict accepted but lenient failed: %v", lerr)
		}
		if !report.Empty() {
			t.Fatalf("strict accepted but lenient quarantined %d rows", report.BadRows)
		}
		if len(lenient.Posts) != len(strict.Posts) {
			t.Fatalf("lenient kept %d posts, strict %d", len(lenient.Posts), len(strict.Posts))
		}
		// Round trip: encode, re-read, re-encode. Posts must survive
		// exactly and the encoding must be a byte-identical fixpoint.
		var once bytes.Buffer
		if err := strict.WriteCSV(&once); err != nil {
			t.Fatalf("WriteCSV of accepted dataset: %v", err)
		}
		back, err := ReadCSV("fuzz", bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("re-read of WriteCSV output: %v\n%q", err, once.Bytes())
		}
		if len(back.Posts) != len(strict.Posts) {
			t.Fatalf("round trip kept %d posts, want %d", len(back.Posts), len(strict.Posts))
		}
		for i := range strict.Posts {
			if back.Posts[i].UserID != strict.Posts[i].UserID || !back.Posts[i].Time.Equal(strict.Posts[i].Time) {
				t.Fatalf("post %d drifted in round trip: %+v vs %+v", i, back.Posts[i], strict.Posts[i])
			}
		}
		var twice bytes.Buffer
		if err := back.WriteCSV(&twice); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("WriteCSV is not a fixpoint:\n%q\nvs\n%q", once.Bytes(), twice.Bytes())
		}
	})
}

// FuzzShardSplit feeds arbitrary bytes and worker counts to the sharded
// parallel reader. Invariants:
//
//   - shardSplit cuts are monotone, newline-aligned and cover the input,
//     whatever the byte soup;
//   - the parallel reader never panics and is byte-identical to the
//     sequential reader — datasets, quarantine reports and typed errors —
//     in both strict and lenient modes, at any worker count. Adversarial
//     newline/quote/\r placements all funnel through here.
func FuzzShardSplit(f *testing.F) {
	f.Add([]byte("user_id,time_rfc3339\nu1,2017-03-01T10:00:00Z\n"), uint8(3))
	f.Add([]byte("user_id,time_rfc3339\r\nu1,2017-03-01T10:00:00Z\r\nu2,bad\r\n"), uint8(7))
	f.Add([]byte("user_id,time_rfc3339\nu\r1,2017-03-01T10:00:00Z\nu2\n,\n"), uint8(2))
	f.Add([]byte("user_id,time_rfc3339\nu1,2017-03-01T10:00:00+02:00\nu1,2017-03-01T10:00:00.5Z"), uint8(16))
	f.Add([]byte("\n\nuser_id,time_rfc3339\n\r\nu1,2017-03-01T10:00:00Z\r"), uint8(5))
	f.Add([]byte("no,header\n"), uint8(1))
	f.Add([]byte(""), uint8(9))
	f.Add([]byte("\"\n\x00,\r"), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, rawWorkers uint8) {
		workers := 1 + int(rawWorkers%16)
		start := 0
		if len(data) > 0 {
			start = int(rawWorkers) % len(data)
		}
		checkShardSplit(t, data, start, workers)
		checkParallelEquivalence(t, data, ReadCSVOptions{}, workers)
		checkParallelEquivalence(t, data, ReadCSVOptions{Lenient: true, MaxBadRows: 8, SampleCap: 3}, workers)
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoder.
// Invariants:
//
//   - the decoder never panics, whatever the bytes (truncations, bit
//     flips, hostile counts);
//   - every rejection is a typed *SnapshotError;
//   - anything accepted is canonical: re-encoding the decoded dataset
//     reproduces the input byte-for-byte.
func FuzzSnapshotDecode(f *testing.F) {
	seed, _, err := ReadCSVOpts("seed", bytes.NewReader([]byte(
		"user_id,time_rfc3339\nu1,2017-03-01T10:00:00Z\nu2,2017-03-01T10:00:00.5Z\nu1,2017-03-01T09:00:00Z\n")),
		ReadCSVOptions{})
	if err != nil {
		f.Fatal(err)
	}
	seed.GroundTruth = map[string]string{"u1": "jp"}
	var buf bytes.Buffer
	if err := seed.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:16])
	mutated := bytes.Clone(valid)
	mutated[len(mutated)/2] ^= 0x40
	f.Add(mutated)
	f.Add([]byte("DCSNAP01"))
	f.Add([]byte(""))
	f.Add([]byte("DCSNAP01\x01\x00\x00\x00\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := decodeSnapshot(data)
		if err != nil {
			var se *SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("decode error is %T, want *SnapshotError: %v", err, err)
			}
			if ds != nil {
				t.Fatal("decode returned both a dataset and an error")
			}
			return
		}
		var out bytes.Buffer
		if err := ds.WriteSnapshot(&out); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted snapshot is not canonical:\n in: %x\nout: %x", data, out.Bytes())
		}
	})
}
