package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Logger is the structured progress logger: one logfmt-style line per
// event, timestamped, safe for concurrent use. A nil *Logger drops every
// event, so progress calls cost a nil check when logging is off.
//
//	ts=2018-03-01T12:00:00.000Z stage=crawl msg="thread done" thread=12 pages=3
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	clock func() time.Time
}

// NewLogger creates a logger writing to w.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w, clock: time.Now}
}

// SetClock overrides the timestamp source (tests).
func (l *Logger) SetClock(clock func() time.Time) {
	if l == nil || clock == nil {
		return
	}
	l.mu.Lock()
	l.clock = clock
	l.mu.Unlock()
}

// Eventf emits one progress event for a pipeline stage. The message is
// formatted with fmt and quoted if it contains spaces; extra key=value
// pairs come in as alternating key, value arguments:
//
//	log.Eventf("crawl", "thread done", "thread", id, "pages", pages)
func (l *Logger) Eventf(stage, msg string, kv ...any) {
	if l == nil {
		return
	}
	var b strings.Builder
	l.mu.Lock()
	ts := l.clock().UTC()
	l.mu.Unlock()
	b.WriteString("ts=")
	b.WriteString(ts.Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" stage=")
	b.WriteString(stage)
	b.WriteString(" msg=")
	writeValue(&b, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kv[i])
		b.WriteByte('=')
		writeValue(&b, fmt.Sprintf("%v", kv[i+1]))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// writeValue writes a logfmt value, quoting when it contains spaces,
// quotes or equals signs.
func writeValue(b *strings.Builder, v string) {
	if strings.ContainsAny(v, " \t\"=") {
		fmt.Fprintf(b, "%q", v)
		return
	}
	b.WriteString(v)
}
