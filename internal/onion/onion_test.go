package onion

import (
	"bufio"
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
)

func newTestNetwork(t *testing.T, relays int) *Network {
	t.Helper()
	n := NewNetwork(7)
	if _, err := n.AddRelays(relays); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestSealOpenLayer(t *testing.T) {
	t.Parallel()
	var enc, mac [32]byte
	copy(enc[:], bytes.Repeat([]byte{1}, 32))
	copy(mac[:], bytes.Repeat([]byte{2}, 32))
	plain := []byte("hello onion world")
	sealed, err := sealLayer(enc, mac, plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := openLayer(enc, mac, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Errorf("round trip: %q", got)
	}
	// Tampering must be detected.
	sealed[len(sealed)-1] ^= 0xff
	if _, err := openLayer(enc, mac, sealed); err == nil {
		t.Error("tampered layer accepted")
	}
	// Wrong key must be rejected.
	var wrong [32]byte
	sealed[len(sealed)-1] ^= 0xff // restore
	if _, err := openLayer(enc, wrong, sealed); err == nil {
		t.Error("wrong MAC key accepted")
	}
	if _, err := openLayer(enc, mac, []byte("short")); err == nil {
		t.Error("short input accepted")
	}
}

func TestDeriveHopKeysAgreement(t *testing.T) {
	t.Parallel()
	a, err := newKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	b, err := newKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	ka, err := deriveHopKeys(a.priv, b.pub)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := deriveHopKeys(b.priv, a.pub)
	if err != nil {
		t.Fatal(err)
	}
	if ka.fwdEnc != kb.fwdEnc || ka.bwdMAC != kb.bwdMAC {
		t.Error("key agreement mismatch")
	}
	if ka.fwdEnc == ka.bwdEnc || ka.fwdMAC == ka.fwdEnc {
		t.Error("directional keys must differ")
	}
	if _, err := deriveHopKeys(a.priv, []byte("bogus")); err == nil {
		t.Error("bad peer key accepted")
	}
}

func TestRelayMsgCodec(t *testing.T) {
	t.Parallel()
	msgs := []relayMsg{
		{Cmd: relayData, Stream: 7, Body: []byte("payload")},
		{Cmd: relayExtended, Stream: 0, Body: nil},
		{Cmd: relayEnd, Stream: 65535, Body: []byte{}},
	}
	for _, m := range msgs {
		got, err := decodeRelayMsg(encodeRelayMsg(m))
		if err != nil {
			t.Fatalf("decode(%v): %v", m.Cmd, err)
		}
		if got.Cmd != m.Cmd || got.Stream != m.Stream || !bytes.Equal(got.Body, m.Body) {
			t.Errorf("round trip: got %+v, want %+v", got, m)
		}
	}
	if _, err := decodeRelayMsg([]byte{1, 2}); err == nil {
		t.Error("truncated message accepted")
	}
	if _, err := decodeRelayMsg([]byte{1, 0, 0, 0, 0, 0, 99}); err == nil {
		t.Error("length overrun accepted")
	}
}

func TestExtendAndIntroduceCodecs(t *testing.T) {
	t.Parallel()
	e := extendPayload{Target: "relay-5", ClientPub: bytes.Repeat([]byte{9}, 32)}
	got, err := decodeExtend(encodeExtend(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Target != e.Target || !bytes.Equal(got.ClientPub, e.ClientPub) {
		t.Errorf("extend round trip: %+v", got)
	}
	if _, err := decodeExtend([]byte{0}); err == nil {
		t.Error("truncated extend accepted")
	}

	i := introduce1Payload{Onion: "abcdefghij123456.onion", RendezvousPoint: "relay-2", Cookie: bytes.Repeat([]byte{3}, 16)}
	gotI, err := decodeIntroduce1(encodeIntroduce1(i))
	if err != nil {
		t.Fatal(err)
	}
	if gotI.Onion != i.Onion || gotI.RendezvousPoint != i.RendezvousPoint || !bytes.Equal(gotI.Cookie, i.Cookie) {
		t.Errorf("introduce1 round trip: %+v", gotI)
	}
	if _, err := decodeIntroduce1(nil); err == nil {
		t.Error("empty introduce1 accepted")
	}
}

func TestOnionAddress(t *testing.T) {
	t.Parallel()
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	addr := OnionAddress(pub)
	if !strings.HasSuffix(addr, ".onion") {
		t.Errorf("address %q lacks suffix", addr)
	}
	host := strings.TrimSuffix(addr, ".onion")
	if len(host) != 16 {
		t.Errorf("host %q has %d chars, want 16 (v2-style)", host, len(host))
	}
	if host != strings.ToLower(host) {
		t.Error("address should be lowercase")
	}
	// Deterministic.
	if OnionAddress(pub) != addr {
		t.Error("address not deterministic")
	}
}

func TestDescriptorSignVerify(t *testing.T) {
	t.Parallel()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	d := &Descriptor{Onion: OnionAddress(pub), IntroPoints: []string{"relay-1", "relay-2"}, PublicKey: pub}
	d.Sign(priv)
	if err := d.Verify(); err != nil {
		t.Fatalf("valid descriptor rejected: %v", err)
	}
	// Tampered intro points.
	d2 := d.clone()
	d2.IntroPoints[0] = "evil-relay"
	if err := d2.Verify(); err == nil {
		t.Error("tampered descriptor accepted")
	}
	// Address not matching key.
	d3 := d.clone()
	d3.Onion = "aaaaaaaaaaaaaaaa.onion"
	if err := d3.Verify(); err == nil {
		t.Error("address mismatch accepted")
	}
	// No key.
	d4 := d.clone()
	d4.PublicKey = nil
	if err := d4.Verify(); err == nil {
		t.Error("keyless descriptor accepted")
	}
}

func TestDirectoryRoster(t *testing.T) {
	t.Parallel()
	d := NewDirectory()
	d.AddRelay("b")
	d.AddRelay("a")
	d.AddRelay("c")
	d.AddRelay("a") // duplicate ignored
	if got := d.Relays(); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("Relays() = %v", got)
	}
	if d.NumRelays() != 3 {
		t.Errorf("NumRelays = %d", d.NumRelays())
	}
	d.RemoveRelay("b")
	if d.NumRelays() != 2 {
		t.Errorf("after remove: %d", d.NumRelays())
	}
	dirs, err := d.HSDirs("someonion.onion", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 {
		t.Errorf("HSDirs = %v", dirs)
	}
	// Stable assignment.
	dirs2, err := d.HSDirs("someonion.onion", 2)
	if err != nil {
		t.Fatal(err)
	}
	if dirs[0] != dirs2[0] || dirs[1] != dirs2[1] {
		t.Error("HSDir assignment not stable")
	}
	empty := NewDirectory()
	if _, err := empty.HSDirs("x.onion", 1); err == nil {
		t.Error("empty directory should fail")
	}
}

func TestPickRelays(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 10)
	picked, err := n.PickRelays(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 3 {
		t.Fatalf("picked %v", picked)
	}
	seen := map[string]bool{}
	for _, id := range picked {
		if seen[id] {
			t.Error("duplicate relay picked")
		}
		seen[id] = true
	}
	// Exclusion respected.
	picked, err = n.PickRelays(9, "relay-0")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range picked {
		if id == "relay-0" {
			t.Error("excluded relay picked")
		}
	}
	if _, err := n.PickRelays(11); err == nil {
		t.Error("overdraw should fail")
	}
}

func TestExternalDialThroughExitCircuit(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 6)
	// A simple echo destination on the "standard web".
	err := n.RegisterExternal("echo.example", func(conn net.Conn) {
		defer conn.Close()
		_, _ = io.Copy(conn, conn)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.RegisterExternal("echo.example", nil); err == nil {
		t.Error("duplicate external registration accepted")
	}

	client, err := NewClient(n, "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	conn, err := client.Dial("echo.example:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	msg := []byte("through three hops and back")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("echo = %q", buf)
	}

	path, err := client.Path()
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Errorf("exit circuit has %d hops, want 3: %v", len(path), path)
	}
}

func TestDialUnknownExternal(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 6)
	client, err := NewClient(n, "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Dial("nonexistent.example"); err == nil {
		t.Error("dial to unregistered destination should fail")
	}
}

func TestHiddenServiceEndToEnd(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 8)
	svc, err := HostService(n, "hidden-wiki", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if !strings.HasSuffix(svc.Onion(), ".onion") {
		t.Fatalf("bad onion address %q", svc.Onion())
	}

	// Serve a tiny line protocol.
	go func() {
		ln := svc.Listener()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				line, err := r.ReadString('\n')
				if err != nil {
					return
				}
				fmt.Fprintf(conn, "you said: %s", line)
			}(conn)
		}
	}()

	client, err := NewClient(n, "carol")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	conn, err := client.Dial(svc.Onion())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, "hello hidden service"); err != nil {
		t.Fatal(err)
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if reply != "you said: hello hidden service\n" {
		t.Errorf("reply = %q", reply)
	}
}

func TestHiddenServiceHTTP(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 8)
	svc, err := HostService(n, "http-service", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "welcome to %s", r.Host)
	})
	server := &http.Server{Handler: mux}
	go func() { _ = server.Serve(svc.Listener()) }()
	defer server.Close()

	client, err := NewClient(n, "dave")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	httpClient := &http.Client{Transport: &http.Transport{DialContext: client.DialContext}}
	resp, err := httpClient.Get("http://" + svc.Onion() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := "welcome to " + svc.Onion()
	if string(body) != want {
		t.Errorf("body = %q, want %q", body, want)
	}
}

func TestHiddenServiceMultipleStreams(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 8)
	svc, err := HostService(n, "multi", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	go func() {
		ln := svc.Listener()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}(conn)
		}
	}()

	client, err := NewClient(n, "erin")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Several concurrent streams over one rendezvous circuit.
	const streams = 5
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		go func(i int) {
			conn, err := client.Dial(svc.Onion())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			msg := []byte(fmt.Sprintf("stream-%d", i))
			if _, err := conn.Write(msg); err != nil {
				errs <- err
				return
			}
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(conn, buf); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(buf, msg) {
				errs <- fmt.Errorf("stream %d: echo %q", i, buf)
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < streams; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

func TestFetchDescriptor(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 8)
	svc, err := HostService(n, "lookup", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	client, err := NewClient(n, "frank")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	desc, err := client.FetchDescriptor(svc.Onion())
	if err != nil {
		t.Fatal(err)
	}
	if desc.Onion != svc.Onion() {
		t.Errorf("descriptor onion %q", desc.Onion)
	}
	if len(desc.IntroPoints) != 2 {
		t.Errorf("descriptor intro points %v", desc.IntroPoints)
	}
	if _, err := client.FetchDescriptor("doesnotexist1234.onion"); err == nil {
		t.Error("missing descriptor should fail")
	}
}

func TestLargeTransfer(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 8)
	svc, err := HostService(n, "bulk", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	payload := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB
	go func() {
		ln := svc.Listener()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				_, _ = conn.Write(payload)
			}(conn)
		}
	}()

	client, err := NewClient(n, "grace")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	conn, err := client.Dial(svc.Onion())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("large transfer corrupted")
	}
}

func TestNetworkCloseIdempotent(t *testing.T) {
	t.Parallel()
	n := NewNetwork(1)
	if _, err := n.AddRelays(3); err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close() // second close is a no-op
	if _, err := n.AddRelay("late"); err == nil {
		t.Error("attach after close should fail")
	}
}

func TestCellCommandStrings(t *testing.T) {
	t.Parallel()
	if CmdCreate.String() != "CREATE" || CmdRelay.String() != "RELAY" {
		t.Error("cell command strings wrong")
	}
	if CellCommand(99).String() == "" {
		t.Error("unknown command string empty")
	}
	if relayData.String() != "DATA" || relayRendezvous2.String() != "RENDEZVOUS2" {
		t.Error("relay command strings wrong")
	}
	if relayCommand(99).String() == "" {
		t.Error("unknown relay command string empty")
	}
}

func TestDuplicateNodeID(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 3)
	if _, err := NewClient(n, "dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(n, "dup"); err == nil {
		t.Error("duplicate node ID accepted")
	}
}
