package main

// darkcrowd bench: warp-style load benchmark against a live serve daemon.
//
//	darkcrowd serve -addr 127.0.0.1:8080 &
//	darkcrowd bench -url http://127.0.0.1:8080                  # 8-way mixed, 10s
//	darkcrowd bench -url ... -workload ingest -concurrent 16
//	darkcrowd bench -url ... -autoterm                          # stop when steady
//	darkcrowd bench -url ... -out BENCH_serve.json              # write the report
//	darkcrowd bench -url ... -out BENCH_serve.json -as-baseline # record as serve_baseline
//	darkcrowd bench -url ... -check BENCH_serve.json            # CI regression gate (2x)
//
// The report embeds both the current run (serve) and, when recorded with
// -as-baseline, a reference run (serve_baseline) — by convention the
// pre-sharding single-mutex daemon — so the serving speedup regenerates
// from the file alone. Writing -out preserves whichever of the two
// sections the existing file already holds and this run doesn't replace.

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"darkcrowd/internal/bench"
)

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	url := fs.String("url", "", "daemon base URL (required), e.g. http://127.0.0.1:8080")
	workload := fs.String("workload", bench.WorkloadMixed, "op mix: ingest, place, report, healthz, or mixed")
	concurrent := fs.Int("concurrent", 8, "concurrent workers")
	duration := fs.Duration("duration", 10*time.Second, "run length (autoterm may stop earlier)")
	ingestBatch := fs.Int("ingest-batch", 256, "NDJSON lines per ingest request")
	users := fs.Int("users", 64, "synthetic user-ID space")
	seed := fs.Int64("seed", 1, "op/user sequence seed")
	autoTerm := fs.Bool("autoterm", false, "stop early once throughput is steady")
	autoTermWindow := fs.Duration("autoterm-window", 3*time.Second, "steadiness window for -autoterm")
	autoTermCV := fs.Float64("autoterm-cv", 0.075, "throughput coefficient-of-variation threshold for -autoterm")
	out := fs.String("out", "", "write the JSON report here (existing serve/serve_baseline sections are preserved)")
	asBaseline := fs.Bool("as-baseline", false, "with -out, record this run as serve_baseline instead of serve")
	check := fs.String("check", "", "fail if total throughput drops more than 2x below this committed report's serve section")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("-url is required")
	}

	res, err := bench.Drive(bench.DriverOpts{
		URL:            *url,
		Workload:       *workload,
		Concurrent:     *concurrent,
		Duration:       *duration,
		IngestBatch:    *ingestBatch,
		Users:          *users,
		Seed:           *seed,
		AutoTerm:       *autoTerm,
		AutoTermWindow: *autoTermWindow,
		AutoTermCV:     *autoTermCV,
	})
	if err != nil {
		return err
	}
	printServeResult(res)

	if *check != "" {
		if err := bench.CheckServe(os.Stdout, *check, res, 2); err != nil {
			return err
		}
	}
	if *out != "" {
		report := bench.NewReport("darkcrowd bench", 0, *seed)
		report.Workloads = nil
		// Carry over the sections an earlier run already recorded.
		if prev, err := bench.Load(*out); err != nil {
			return err
		} else if prev != nil {
			report.Serve, report.ServeBaseline = prev.Serve, prev.ServeBaseline
		}
		if *asBaseline {
			report.ServeBaseline = res
		} else {
			report.Serve = res
		}
		if report.Serve != nil && report.ServeBaseline != nil && report.ServeBaseline.OpsPerSec > 0 {
			report.Ratios = map[string]float64{
				"serve_speedup_vs_baseline": bench.Round2(report.Serve.OpsPerSec / report.ServeBaseline.OpsPerSec),
			}
		}
		if err := report.WriteFile(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

// printServeResult renders the run like warp does: one line per op type
// with throughput and latency percentiles, then the totals.
func printServeResult(res *bench.ServeResult) {
	fmt.Printf("workload %s, %d workers, %.2fs", res.Workload, res.Concurrent, res.DurationSec)
	if res.AutoTerminated {
		fmt.Print(" (autoterminated: throughput steady)")
	}
	fmt.Println()
	ops := make([]string, 0, len(res.Ops))
	for op := range res.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		st := res.Ops[op]
		fmt.Printf("  %-8s %9.0f ops/s  p50 %8s  p90 %8s  p99 %8s",
			op, st.OpsPerSec,
			time.Duration(st.Latency.P50), time.Duration(st.Latency.P90), time.Duration(st.Latency.P99))
		if st.Errors > 0 {
			fmt.Printf("  (%d errors)", st.Errors)
		}
		fmt.Println()
	}
	fmt.Printf("total: %d ops, %.0f ops/s", res.TotalOps, res.OpsPerSec)
	if res.IngestLinesPerSec > 0 {
		fmt.Printf(", %.0f posts/s ingested", res.IngestLinesPerSec)
	}
	fmt.Println()
}
