package pipeline

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"darkcrowd/internal/trace"
)

// TestDaemonIngestLineEndings: the ingest wire format is newline-framed,
// but clients on Windows (curl, PowerShell) and rewriting proxies send
// CRLF frames and stray indentation. Every whitespace dressing of the
// same logical stream must accept the same posts and compact to a
// byte-identical .dcs snapshot. This pins the fix for the old trimSpace
// helper, which only trimmed *leading* whitespace and let trailing \r\t
// reach the line parser.
func TestDaemonIngestLineEndings(t *testing.T) {
	dir := t.TempDir()
	csvPath := writeCrowd(t, dir)
	ds, err := trace.ReadCSV(csvPath, strings.NewReader(readFile(t, csvPath)))
	if err != nil {
		t.Fatal(err)
	}
	lf := ndjson(ds.Posts)

	variants := map[string]func([]byte) []byte{
		"lf": func(b []byte) []byte { return b },
		"crlf": func(b []byte) []byte {
			return bytes.ReplaceAll(b, []byte("\n"), []byte("\r\n"))
		},
		"trailing-whitespace": func(b []byte) []byte {
			return bytes.ReplaceAll(b, []byte("\n"), []byte(" \t\r\n"))
		},
		"leading-whitespace": func(b []byte) []byte {
			return append([]byte("  "), bytes.ReplaceAll(b, []byte("\n"), []byte("\n\t "))...)
		},
		"blank-crlf-lines": func(b []byte) []byte {
			return bytes.ReplaceAll(b, []byte("\n"), []byte("\n\r\n"))
		},
	}

	snapshots := make(map[string][]byte, len(variants))
	for name, dress := range variants {
		snap := filepath.Join(dir, name+".dcs")
		d, err := NewDaemon(ServeConfig{
			Reference:     testReference(t),
			SnapshotPath:  snap,
			RefitDebounce: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Ingest(bytes.NewReader(dress(append([]byte(nil), lf...))))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Accepted != len(ds.Posts) || res.Rejected != 0 {
			t.Fatalf("%s: accepted %d rejected %d, want %d/0", name, res.Accepted, res.Rejected, len(ds.Posts))
		}
		if res.Users > res.Posts {
			t.Fatalf("%s: result reports %d users for %d posts", name, res.Users, res.Posts)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		snapshots[name] = mustReadBytes(t, snap)
	}
	for name, snap := range snapshots {
		if !bytes.Equal(snap, snapshots["lf"]) {
			t.Errorf("%s snapshot differs from lf snapshot (%d vs %d bytes)", name, len(snap), len(snapshots["lf"]))
		}
	}
}
