package onion

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/base32"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// OnionSuffix is the hidden-service top-level domain.
const OnionSuffix = ".onion"

// onionBase32 encodes addresses the way Tor v2 did: lowercase base32, 16
// characters derived from the service's public key (§II-B: "their host name
// consists of a string of 16 characters derived from the service's public
// key").
var onionBase32 = base32.StdEncoding.WithPadding(base32.NoPadding)

// OnionAddress derives the .onion hostname from an Ed25519 identity key.
func OnionAddress(pub ed25519.PublicKey) string {
	sum := sha256.Sum256(pub)
	return strings.ToLower(onionBase32.EncodeToString(sum[:10])) + OnionSuffix
}

// Descriptor is a hidden-service descriptor: "all the information useful to
// allow the client to know the introduction point of the hidden services"
// (§II-B). It is signed by the service's identity key.
type Descriptor struct {
	// Onion is the service's .onion address.
	Onion string
	// IntroPoints lists the relay IDs acting as introduction points.
	IntroPoints []string
	// PublicKey is the service's Ed25519 identity key.
	PublicKey ed25519.PublicKey
	// Signature covers the address and intro points.
	Signature []byte
}

// descriptorDigest is the byte string the descriptor signature covers.
func descriptorDigest(onion string, intros []string) []byte {
	h := sha256.New()
	h.Write([]byte(onion))
	for _, ip := range intros {
		h.Write([]byte{0})
		h.Write([]byte(ip))
	}
	return h.Sum(nil)
}

// Sign populates the descriptor signature with the service's private key.
func (d *Descriptor) Sign(priv ed25519.PrivateKey) {
	d.Signature = ed25519.Sign(priv, descriptorDigest(d.Onion, d.IntroPoints))
}

// Verify checks the descriptor's signature and that the address matches the
// embedded public key.
func (d *Descriptor) Verify() error {
	if len(d.PublicKey) != ed25519.PublicKeySize {
		return errors.New("onion: descriptor has no valid public key")
	}
	if OnionAddress(d.PublicKey) != d.Onion {
		return fmt.Errorf("onion: descriptor address %q does not match its key", d.Onion)
	}
	if !ed25519.Verify(d.PublicKey, descriptorDigest(d.Onion, d.IntroPoints), d.Signature) {
		return errors.New("onion: descriptor signature invalid")
	}
	return nil
}

// clone returns a deep copy so callers cannot mutate stored descriptors.
func (d *Descriptor) clone() *Descriptor {
	out := &Descriptor{
		Onion:       d.Onion,
		IntroPoints: append([]string(nil), d.IntroPoints...),
		PublicKey:   append(ed25519.PublicKey(nil), d.PublicKey...),
		Signature:   append([]byte(nil), d.Signature...),
	}
	return out
}

// Directory is the network's directory authority: it tracks the relay
// roster and decides which relays act as hidden-service directories for
// each onion address. (In real Tor the HSDir set is a DHT ring over relay
// fingerprints; the ring walk below mimics that.)
type Directory struct {
	mu     sync.RWMutex
	relays []string // sorted relay IDs
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{}
}

// AddRelay registers a relay ID.
func (d *Directory) AddRelay(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	i := sort.SearchStrings(d.relays, id)
	if i < len(d.relays) && d.relays[i] == id {
		return
	}
	d.relays = append(d.relays, "")
	copy(d.relays[i+1:], d.relays[i:])
	d.relays[i] = id
}

// RemoveRelay deregisters a relay ID.
func (d *Directory) RemoveRelay(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	i := sort.SearchStrings(d.relays, id)
	if i < len(d.relays) && d.relays[i] == id {
		d.relays = append(d.relays[:i], d.relays[i+1:]...)
	}
}

// Relays returns the sorted relay roster.
func (d *Directory) Relays() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.relays...)
}

// NumRelays returns the roster size.
func (d *Directory) NumRelays() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.relays)
}

// HSDirs returns the n relays responsible for an onion address: the ring
// successors of the address hash over the sorted relay roster.
func (d *Directory) HSDirs(onion string, n int) ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.relays) == 0 {
		return nil, errors.New("onion: directory has no relays")
	}
	if n > len(d.relays) {
		n = len(d.relays)
	}
	// Walk the ring of relays ordered by fingerprint hash, starting at
	// the successor of the address hash.
	type ringEntry struct {
		hash string
		id   string
	}
	ring := make([]ringEntry, 0, len(d.relays))
	for _, id := range d.relays {
		sum := sha256.Sum256([]byte(id))
		ring = append(ring, ringEntry{hash: fmt.Sprintf("%x", sum[:8]), id: id})
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
	sum := sha256.Sum256([]byte(onion))
	key := fmt.Sprintf("%x", sum[:8])
	start := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= key })
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ring[(start+i)%len(ring)].id)
	}
	return out, nil
}
