package trace

// The binary columnar snapshot format (.dcs). Parsing CSV — even sharded
// — is O(input) string work on every run; a snapshot round-trips the
// interned columnar Store so a previously-seen dataset loads with O(1)
// parse work: read columns, verify checksums, rebuild the CSR grouping.
//
// Layout (all integers little-endian):
//
//	magic   "DCSNAP01" (8 bytes)
//	version uint32 (currently 1)
//	count   uint32 (number of sections)
//	count × section:
//	    tag     4 bytes
//	    length  uint64 (payload bytes)
//	    crc32   uint32 (IEEE, over the payload)
//	    payload length bytes
//
// Sections, in this exact order (NANO and GRTR only when non-empty):
//
//	META  uint64 nUsers, uint64 nPosts, byte sortedByTime (0/1),
//	      uvarint len + dataset name
//	DICT  nUsers × (uvarint len + user ID), strictly ascending
//	USER  nPosts × uint32: per post, dense user index (sorted rank)
//	WHEN  nPosts × uint64: per post, Unix seconds (two's complement)
//	OFFS  (nUsers+1) × uint32: CSR offsets of the per-user grouping
//	NANO  uvarint count, count × (uint64 post index, uint32 nanoseconds):
//	      posts with sub-second precision, strictly ascending indices
//	GRTR  uvarint count, count × (uvarint len + user ID, uvarint len +
//	      region), strictly ascending IDs: the ground-truth labels
//
// The encoding is canonical — one dataset has exactly one byte
// representation — and the decoder rejects everything else (wrong section
// order, empty optional sections, non-minimal varints, checksum or
// cross-section inconsistencies) with a typed *SnapshotError. That makes
// "decode then re-encode is the identity" a fuzzable invariant, and means
// a corrupted file can never be half-loaded. Evolution rule: any layout
// change bumps the version; readers reject versions (and section tags)
// they don't know.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"time"
)

const (
	snapshotMagic   = "DCSNAP01"
	snapshotVersion = 1
)

// snapshotTags is the canonical section order.
var snapshotTags = []string{"META", "DICT", "USER", "WHEN", "OFFS", "NANO", "GRTR"}

// SnapshotError is the typed error for every way a snapshot can fail to
// decode: damaged bytes, version drift, checksum mismatches, or sections
// that are internally consistent but contradict each other.
type SnapshotError struct {
	// Section is the 4-byte section tag, or "header" for the envelope.
	Section string
	// Reason describes the failure.
	Reason string
}

// Error implements the error interface.
func (e *SnapshotError) Error() string {
	return fmt.Sprintf("trace: snapshot %s: %s", e.Section, e.Reason)
}

func snapErr(section, format string, args ...any) error {
	return &SnapshotError{Section: section, Reason: fmt.Sprintf(format, args...)}
}

// WriteSnapshot encodes the dataset in the .dcs columnar snapshot format.
// Times are persisted as UTC instants (Unix seconds plus an exception
// list for sub-second precision) — exactly the package's data model.
func (d *Dataset) WriteSnapshot(w io.Writer) error {
	s := d.Index()
	if len(s.ids) > math.MaxInt32 || len(s.userOf) > math.MaxInt32 {
		return snapErr("META", "dataset too large for snapshot (int32 CSR indices)")
	}

	meta := binary.LittleEndian.AppendUint64(nil, uint64(len(s.ids)))
	meta = binary.LittleEndian.AppendUint64(meta, uint64(len(s.userOf)))
	flag := byte(0)
	if s.sortedByTime {
		flag = 1
	}
	meta = append(meta, flag)
	meta = binary.AppendUvarint(meta, uint64(len(d.Name)))
	meta = append(meta, d.Name...)

	dict := make([]byte, 0, 8*len(s.ids))
	for _, id := range s.ids {
		dict = binary.AppendUvarint(dict, uint64(len(id)))
		dict = append(dict, id...)
	}

	user := make([]byte, 0, 4*len(s.userOf))
	for _, u := range s.userOf {
		user = binary.LittleEndian.AppendUint32(user, uint32(u))
	}

	when := make([]byte, 0, 8*len(s.when))
	for _, sec := range s.when {
		when = binary.LittleEndian.AppendUint64(when, uint64(sec))
	}

	offs := make([]byte, 0, 4*len(s.offsets))
	for _, o := range s.offsets {
		offs = binary.LittleEndian.AppendUint32(offs, uint32(o))
	}

	var nano []byte
	nanoCount := 0
	for i := range d.Posts {
		if d.Posts[i].Time.Nanosecond() != 0 {
			nanoCount++
		}
	}
	if nanoCount > 0 {
		nano = binary.AppendUvarint(nano, uint64(nanoCount))
		for i := range d.Posts {
			if ns := d.Posts[i].Time.Nanosecond(); ns != 0 {
				nano = binary.LittleEndian.AppendUint64(nano, uint64(i))
				nano = binary.LittleEndian.AppendUint32(nano, uint32(ns))
			}
		}
	}

	var grtr []byte
	if len(d.GroundTruth) > 0 {
		ids := make([]string, 0, len(d.GroundTruth))
		for id := range d.GroundTruth {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		grtr = binary.AppendUvarint(grtr, uint64(len(ids)))
		for _, id := range ids {
			grtr = binary.AppendUvarint(grtr, uint64(len(id)))
			grtr = append(grtr, id...)
			region := d.GroundTruth[id]
			grtr = binary.AppendUvarint(grtr, uint64(len(region)))
			grtr = append(grtr, region...)
		}
	}

	payloads := [][]byte{meta, dict, user, when, offs, nano, grtr}
	count := 0
	for _, p := range payloads {
		if p != nil {
			count++
		}
	}
	header := append([]byte(snapshotMagic), 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(header[8:], snapshotVersion)
	binary.LittleEndian.PutUint32(header[12:], uint32(count))
	if _, err := w.Write(header); err != nil {
		return err
	}
	var secHeader [16]byte
	for i, p := range payloads {
		if p == nil {
			continue
		}
		copy(secHeader[:4], snapshotTags[i])
		binary.LittleEndian.PutUint64(secHeader[4:], uint64(len(p)))
		binary.LittleEndian.PutUint32(secHeader[12:], crc32.ChecksumIEEE(p))
		if _, err := w.Write(secHeader[:]); err != nil {
			return err
		}
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// ReadSnapshot decodes a .dcs snapshot into a Dataset with its columnar
// index pre-built (Dataset.Index is free on the result). Every defect —
// truncation, bit flips, version drift, cross-section inconsistency —
// returns a *SnapshotError; a non-nil Dataset is always fully valid.
func ReadSnapshot(r io.Reader) (*Dataset, error) {
	data, err := readAllSized(r)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(data)
}

// ReadSnapshotBytes is ReadSnapshot for a snapshot already in memory
// (mmap, embedded data, a just-written buffer). The decode copies what it
// keeps — data is not retained and may be reused or unmapped afterwards.
func ReadSnapshotBytes(data []byte) (*Dataset, error) {
	return decodeSnapshot(data)
}

// readAllSized reads r to EOF. When r can report its size (files,
// bytes.Reader) the buffer is allocated once at the exact size instead of
// grown through io.ReadAll's doubling copies — snapshots are read whole,
// so the copies would double the load's memory traffic.
func readAllSized(r io.Reader) ([]byte, error) {
	if s, ok := r.(io.Seeker); ok {
		cur, err1 := s.Seek(0, io.SeekCurrent)
		end, err2 := s.Seek(0, io.SeekEnd)
		if err1 == nil && err2 == nil && cur >= 0 && end >= cur {
			if _, err := s.Seek(cur, io.SeekStart); err != nil {
				return nil, err
			}
			buf := make([]byte, end-cur)
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			return buf, nil
		}
	}
	return io.ReadAll(r)
}

// uvarint decodes a minimally-encoded varint, rejecting truncated and
// non-minimal forms (non-minimal forms would break the canonical
// encode-decode bijection).
func uvarint(b []byte) (v uint64, rest []byte, ok bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 || n != uvarintLen(v) {
		return 0, nil, false
	}
	return v, b[n:], true
}

// uvarintLen returns the minimal encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decodeSnapshot is ReadSnapshot on bytes (and the fuzz entry point).
func decodeSnapshot(data []byte) (*Dataset, error) {
	if len(data) < 16 {
		return nil, snapErr("header", "truncated header (%d bytes)", len(data))
	}
	if string(data[:8]) != snapshotMagic {
		return nil, snapErr("header", "bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != snapshotVersion {
		return nil, snapErr("header", "unsupported version %d (want %d)", v, snapshotVersion)
	}
	count := binary.LittleEndian.Uint32(data[12:16])
	if count > uint32(len(snapshotTags)) {
		return nil, snapErr("header", "section count %d out of range", count)
	}

	// Walk the sections, enforcing the canonical order and per-section
	// checksums.
	sections := make(map[string][]byte, count)
	off := 16
	nextTag := 0
	for i := uint32(0); i < count; i++ {
		if len(data)-off < 16 {
			return nil, snapErr("header", "truncated section header at offset %d", off)
		}
		tag := string(data[off : off+4])
		size := binary.LittleEndian.Uint64(data[off+4 : off+12])
		sum := binary.LittleEndian.Uint32(data[off+12 : off+16])
		off += 16
		if uint64(len(data)-off) < size {
			return nil, snapErr(tag, "truncated payload (%d of %d bytes)", len(data)-off, size)
		}
		payload := data[off : off+int(size)]
		off += int(size)
		pos := -1
		for j := nextTag; j < len(snapshotTags); j++ {
			if snapshotTags[j] == tag {
				pos = j
				break
			}
		}
		if pos < 0 {
			return nil, snapErr(tag, "unknown or out-of-order section")
		}
		nextTag = pos + 1
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, snapErr(tag, "checksum mismatch")
		}
		sections[tag] = payload
	}
	if off != len(data) {
		return nil, snapErr("header", "%d trailing bytes", len(data)-off)
	}
	for _, tag := range snapshotTags[:5] {
		if _, ok := sections[tag]; !ok {
			return nil, snapErr(tag, "missing required section")
		}
	}

	// META: counts, order flag, name.
	meta := sections["META"]
	if len(meta) < 17 {
		return nil, snapErr("META", "truncated")
	}
	nUsers64 := binary.LittleEndian.Uint64(meta[:8])
	nPosts64 := binary.LittleEndian.Uint64(meta[8:16])
	flag := meta[16]
	if flag > 1 {
		return nil, snapErr("META", "bad sortedByTime flag %d", flag)
	}
	if nUsers64 > math.MaxInt32 || nPosts64 > math.MaxInt32 {
		return nil, snapErr("META", "counts out of int32 range (%d users, %d posts)", nUsers64, nPosts64)
	}
	nUsers, nPosts := int(nUsers64), int(nPosts64)
	nameLen, rest, ok := uvarint(meta[17:])
	if !ok || uint64(len(rest)) != nameLen {
		return nil, snapErr("META", "bad name encoding")
	}
	name := string(rest)

	// DICT: the sorted user dictionary. Every entry takes at least one
	// byte, so the claimed count is bounded by the payload size before any
	// count-proportional allocation.
	dict := sections["DICT"]
	if nUsers > len(dict) {
		return nil, snapErr("DICT", "user count %d exceeds section size %d", nUsers, len(dict))
	}
	// One backing allocation for every ID: the strings are slices of a
	// single immutable copy of the payload, not per-entry copies.
	slab := string(dict)
	ids := make([]string, nUsers)
	pos := 0
	for u := 0; u < nUsers; u++ {
		n, rest, ok := uvarint(dict)
		if !ok || uint64(len(rest)) < n {
			return nil, snapErr("DICT", "bad entry %d", u)
		}
		pos += len(dict) - len(rest)
		ids[u] = slab[pos : pos+int(n)]
		pos += int(n)
		dict = rest[n:]
		if u > 0 && ids[u-1] >= ids[u] {
			return nil, snapErr("DICT", "IDs not strictly ascending at entry %d", u)
		}
	}
	if len(dict) != 0 {
		return nil, snapErr("DICT", "%d trailing bytes", len(dict))
	}

	// OFFS: CSR offsets — decoded before USER so the scatter below can
	// cross-check the per-user counts in the same pass that builds the
	// grouping.
	offsPay := sections["OFFS"]
	if len(offsPay) != 4*(nUsers+1) {
		return nil, snapErr("OFFS", "size %d, want %d", len(offsPay), 4*(nUsers+1))
	}
	offsets := make([]int32, nUsers+1)
	for i := range offsets {
		v := binary.LittleEndian.Uint32(offsPay[4*i:])
		if v > uint32(nPosts) {
			return nil, snapErr("OFFS", "offset %d out of range at %d", v, i)
		}
		if i > 0 && int32(v) < offsets[i-1] {
			return nil, snapErr("OFFS", "offsets not non-decreasing at %d", i)
		}
		offsets[i] = int32(v)
	}
	if offsets[0] != 0 || offsets[nUsers] != int32(nPosts) {
		return nil, snapErr("OFFS", "offsets do not span the post column")
	}

	// USER and WHEN: per-post columns, decoded in a single fused pass that
	// also scatters the CSR grouping and materializes the posts — the
	// columns are touched exactly once. The cursor staying inside each
	// user's offset window proves OFFS and USER agree on every count.
	user := sections["USER"]
	if len(user) != 4*nPosts {
		return nil, snapErr("USER", "size %d, want %d", len(user), 4*nPosts)
	}
	whenSec := sections["WHEN"]
	if len(whenSec) != 8*nPosts {
		return nil, snapErr("WHEN", "size %d, want %d", len(whenSec), 8*nPosts)
	}
	userOf := make([]int32, nPosts)
	when := make([]int64, nPosts)
	csr := make([]int32, nPosts)
	var posts []Post
	if nPosts > 0 {
		posts = make([]Post, nPosts)
	}
	cursor := make([]int32, nUsers)
	copy(cursor, offsets[:nUsers])
	// epochBase.Add(sec seconds) builds the identical Time representation
	// to time.Unix(sec, 0).UTC() — {wall 0, ext sec+unixToInternal, loc
	// nil} — without the two calls per post; the Duration multiply only
	// covers ±292 years, so out-of-range instants take the general path.
	epochBase := time.Unix(0, 0).UTC()
	const maxDurSec = int64(math.MaxInt64) / int64(time.Second)
	for i := 0; i < nPosts; i++ {
		u := binary.LittleEndian.Uint32(user[4*i:])
		if u >= uint32(nUsers) {
			return nil, snapErr("USER", "user index %d out of range at post %d", u, i)
		}
		userOf[i] = int32(u)
		c := cursor[u]
		if c >= offsets[u+1] {
			return nil, snapErr("OFFS", "offsets inconsistent with USER counts at user %d", u)
		}
		csr[c] = int32(i)
		cursor[u] = c + 1
		sec := int64(binary.LittleEndian.Uint64(whenSec[8*i:]))
		when[i] = sec
		var ts time.Time
		if sec > -maxDurSec && sec < maxDurSec {
			ts = epochBase.Add(time.Duration(sec) * time.Second)
		} else {
			ts = time.Unix(sec, 0).UTC()
		}
		posts[i] = Post{UserID: ids[u], Time: ts}
	}
	for u := 0; u < nUsers; u++ {
		if cursor[u] != offsets[u+1] {
			return nil, snapErr("OFFS", "offsets inconsistent with USER counts at user %d", u)
		}
	}

	// NANO: sub-second exceptions (optional, non-empty, ascending).
	var nanoAt []int
	var nanoNS []int32
	if nano, ok := sections["NANO"]; ok {
		n, rest, ok := uvarint(nano)
		if !ok || n == 0 {
			return nil, snapErr("NANO", "bad or empty exception count")
		}
		if n > uint64(nPosts) {
			return nil, snapErr("NANO", "exception count %d exceeds posts", n)
		}
		if uint64(len(rest)) != n*12 {
			return nil, snapErr("NANO", "size %d, want %d", len(rest), n*12)
		}
		nanoAt = make([]int, n)
		nanoNS = make([]int32, n)
		for i := range nanoAt {
			idx := binary.LittleEndian.Uint64(rest[12*i:])
			ns := binary.LittleEndian.Uint32(rest[12*i+8:])
			if idx >= uint64(nPosts) {
				return nil, snapErr("NANO", "post index %d out of range", idx)
			}
			if i > 0 && uint64(nanoAt[i-1]) >= idx {
				return nil, snapErr("NANO", "post indices not strictly ascending")
			}
			if ns == 0 || ns >= 1e9 {
				return nil, snapErr("NANO", "nanoseconds %d out of range", ns)
			}
			nanoAt[i] = int(idx)
			nanoNS[i] = int32(ns)
		}
	}

	// GRTR: ground-truth labels (optional, non-empty, ascending IDs).
	var groundTruth map[string]string
	if grtr, ok := sections["GRTR"]; ok {
		n, rest, ok := uvarint(grtr)
		if !ok || n == 0 {
			return nil, snapErr("GRTR", "bad or empty label count")
		}
		if n > uint64(len(rest))/2 { // every entry takes at least two bytes
			return nil, snapErr("GRTR", "label count %d exceeds section size %d", n, len(rest))
		}
		groundTruth = make(map[string]string, n)
		prev := ""
		// Labelled users are usually posting users and regions repeat, so
		// intern IDs against the (also ascending) DICT entries with a
		// merge-join cursor and regions against the handful seen so far
		// instead of allocating two strings per entry.
		dictCur := 0
		var regions []string
		for i := uint64(0); i < n; i++ {
			idLen, r2, ok := uvarint(rest)
			if !ok || uint64(len(r2)) < idLen {
				return nil, snapErr("GRTR", "bad entry %d", i)
			}
			idB := r2[:idLen]
			for dictCur < len(ids) && ids[dictCur] < string(idB) {
				dictCur++
			}
			var id string
			if dictCur < len(ids) && ids[dictCur] == string(idB) {
				id = ids[dictCur]
			} else {
				id = string(idB)
			}
			regLen, r3, ok := uvarint(r2[idLen:])
			if !ok || uint64(len(r3)) < regLen {
				return nil, snapErr("GRTR", "bad entry %d", i)
			}
			regB := r3[:regLen]
			region, seen := "", false
			for _, s := range regions {
				if s == string(regB) {
					region, seen = s, true
					break
				}
			}
			if !seen {
				region = string(regB)
				// The cap keeps a hostile snapshot full of distinct regions
				// from turning the dedup scan quadratic.
				if len(regions) < 64 {
					regions = append(regions, region)
				}
			}
			rest = r3[regLen:]
			if i > 0 && prev >= id {
				return nil, snapErr("GRTR", "IDs not strictly ascending at entry %d", i)
			}
			prev = id
			groundTruth[id] = region
		}
		if len(rest) != 0 {
			return nil, snapErr("GRTR", "%d trailing bytes", len(rest))
		}
	}

	// Verify the order flag on the integer columns (seconds plus the
	// sparse nano exceptions) before paying for the Post materialization.
	sorted := true
	{
		j := 0
		prevSec, prevNS := int64(math.MinInt64), int32(0)
		for i := 0; i < nPosts; i++ {
			ns := int32(0)
			if j < len(nanoAt) && nanoAt[j] == i {
				ns = nanoNS[j]
				j++
			}
			if when[i] < prevSec || (when[i] == prevSec && ns < prevNS) {
				sorted = false
				break
			}
			prevSec, prevNS = when[i], ns
		}
	}
	if sorted != (flag == 1) {
		return nil, snapErr("META", "sortedByTime flag inconsistent with WHEN column")
	}

	// Patch in the sub-second exceptions and assemble the dataset.
	ds := &Dataset{Name: name, GroundTruth: groundTruth, Posts: posts}
	for i, at := range nanoAt {
		posts[at].Time = time.Unix(when[at], int64(nanoNS[i])).UTC()
	}

	ds.idx = &Store{
		ids:          ids,
		lookup:       make(map[string]int32, nUsers),
		userOf:       userOf,
		when:         when,
		offsets:      offsets,
		posts:        csr,
		sortedByTime: sorted,
	}
	for u, id := range ids {
		ds.idx.lookup[id] = int32(u)
	}
	return ds, nil
}
