package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// snapshotTestDataset builds a dataset exercising every snapshot feature:
// interned repeat users, sub-second times, negative epochs, out-of-order
// posts, and ground-truth labels.
func snapshotTestDataset(t *testing.T) *Dataset {
	t.Helper()
	csv := "user_id,time_rfc3339\n" +
		"zed,2021-03-04T05:06:07Z\n" +
		"abe,2021-03-04T05:06:07.25Z\n" +
		"zed,1969-12-31T23:59:59Z\n" +
		"mid,2021-03-04T06:00:00+02:00\n" +
		"abe,2021-03-04T05:06:08Z\n"
	d, rep, err := ReadCSVOpts("snapshot-test", bytes.NewReader([]byte(csv)), ReadCSVOptions{})
	if err != nil || !rep.Empty() {
		t.Fatalf("test dataset failed to parse: %v %v", err, rep)
	}
	d.GroundTruth = map[string]string{"zed": "jp", "abe": "us-il"}
	return d
}

// encodeSnapshot renders a dataset to snapshot bytes.
func encodeSnapshot(t *testing.T, d *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTrip pins the core contract: write → read reproduces
// the dataset (posts, ground truth, columnar store) bit-identically, and
// re-encoding the decoded dataset reproduces the bytes (canonical form).
func TestSnapshotRoundTrip(t *testing.T) {
	t.Parallel()
	cases := map[string]*Dataset{
		"full":  snapshotTestDataset(t),
		"empty": {Name: "empty"},
	}
	r := rand.New(rand.NewSource(3))
	gen, _, err := ReadCSVParallel("gen", genEquivCSV(r, false), ReadCSVOptions{Lenient: true}, 3)
	if err != nil {
		t.Fatalf("generated dataset: %v", err)
	}
	cases["generated"] = gen
	for name, d := range cases {
		t.Run(name, func(t *testing.T) {
			raw := encodeSnapshot(t, d)
			got, err := ReadSnapshot(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("ReadSnapshot: %v", err)
			}
			if got.Name != d.Name {
				t.Fatalf("name %q, want %q", got.Name, d.Name)
			}
			if (got.Posts == nil) != (d.Posts == nil) || !reflect.DeepEqual(got.Posts, d.Posts) {
				t.Fatalf("posts mismatch:\n got %v\nwant %v", got.Posts, d.Posts)
			}
			if !reflect.DeepEqual(got.GroundTruth, d.GroundTruth) {
				t.Fatalf("ground truth mismatch: %v vs %v", got.GroundTruth, d.GroundTruth)
			}
			sameStore(t, d.Index(), got.Index())
			if again := encodeSnapshot(t, got); !bytes.Equal(raw, again) {
				t.Fatalf("snapshot encoding is not canonical: %d vs %d bytes", len(raw), len(again))
			}
		})
	}
}

// TestSnapshotTimesSurvive asserts decoded times are bit-identical
// (DeepEqual, not just Equal) for whole, fractional and negative-epoch
// instants — the property the geolocation golden test leans on.
func TestSnapshotTimesSurvive(t *testing.T) {
	t.Parallel()
	d := snapshotTestDataset(t)
	got, err := ReadSnapshot(bytes.NewReader(encodeSnapshot(t, d)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Posts {
		if !reflect.DeepEqual(d.Posts[i].Time, got.Posts[i].Time) {
			t.Fatalf("post %d time representation drifted: %#v vs %#v", i, d.Posts[i].Time, got.Posts[i].Time)
		}
	}
	if got.Posts[1].Time.Nanosecond() != 250000000 {
		t.Fatalf("fractional second lost: %v", got.Posts[1].Time)
	}
}

// TestSnapshotCorruption asserts every single-bit flip and every
// truncation of a valid snapshot is rejected with a *SnapshotError —
// no panics, no silently wrong datasets.
func TestSnapshotCorruption(t *testing.T) {
	t.Parallel()
	raw := encodeSnapshot(t, snapshotTestDataset(t))
	check := func(mutated []byte, what string) {
		t.Helper()
		ds, err := decodeSnapshot(mutated)
		if err == nil {
			t.Fatalf("%s: corrupted snapshot decoded successfully (%v)", what, ds.Summarize())
		}
		var se *SnapshotError
		if !errors.As(err, &se) {
			t.Fatalf("%s: error is %T, want *SnapshotError: %v", what, err, err)
		}
	}
	for cut := 0; cut < len(raw); cut++ {
		check(raw[:cut], "truncation")
	}
	for i := 0; i < len(raw); i++ {
		for bit := 0; bit < 8; bit++ {
			mutated := bytes.Clone(raw)
			mutated[i] ^= 1 << bit
			check(mutated, "bit flip")
		}
	}
	check(append(bytes.Clone(raw), 0), "trailing byte")
}

// TestSnapshotVersionDrift pins the evolution rule: unknown versions and
// unknown section tags are rejected, not guessed at.
func TestSnapshotVersionDrift(t *testing.T) {
	t.Parallel()
	raw := encodeSnapshot(t, snapshotTestDataset(t))
	futureVersion := bytes.Clone(raw)
	futureVersion[8] = 2
	if _, err := decodeSnapshot(futureVersion); err == nil {
		t.Fatal("future version accepted")
	}
	unknownTag := bytes.Clone(raw)
	copy(unknownTag[16:], "XXXX")
	var se *SnapshotError
	if _, err := decodeSnapshot(unknownTag); !errors.As(err, &se) {
		t.Fatalf("unknown tag: %v", err)
	}
}

// TestSnapshotDecodedStoreUsable sanity-checks that a decoded dataset's
// pre-built index answers queries without rebuilding.
func TestSnapshotDecodedStoreUsable(t *testing.T) {
	t.Parallel()
	d := snapshotTestDataset(t)
	got, err := ReadSnapshot(bytes.NewReader(encodeSnapshot(t, d)))
	if err != nil {
		t.Fatal(err)
	}
	if got.idx == nil {
		t.Fatal("decoded dataset has no pre-built index")
	}
	if !reflect.DeepEqual(got.PostCounts(), d.PostCounts()) {
		t.Fatalf("post counts mismatch: %v vs %v", got.PostCounts(), d.PostCounts())
	}
	if !reflect.DeepEqual(got.ByUser(), d.ByUser()) {
		t.Fatal("ByUser mismatch on decoded store")
	}
	if _, last, ok := got.TimeRange(); !ok || last.Unix() != d.Posts[4].Time.Unix() {
		t.Fatalf("time range wrong: %v %v", last, ok)
	}
}
