// Quickstart: geolocate an anonymous crowd with the public darkcrowd API.
//
// The program builds a reference from a labelled (synthetic) Twitter
// dataset, synthesizes an anonymous crowd living in Japan, and uncovers
// the crowd's time zone from nothing but its posting timestamps.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"darkcrowd"
)

func main() {
	// 1. A labelled dataset with known regions (the paper used a Twitter
	//    stream sample; the library ships a behavioural stand-in).
	labelled, err := darkcrowd.SyntheticTwitterDataset(1, 40)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the generic reference profile (Fig. 2b of the paper).
	ref, err := darkcrowd.BuildReference(labelled)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference built from %d regions\n", len(ref.PerRegion))

	// 3. An anonymous crowd: we know only (user, UTC timestamp) pairs.
	crowd, err := darkcrowd.SyntheticCrowd(7, map[string]int{"jp": 80}, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymous crowd: %d posts by %d users\n",
		crowd.NumPosts(), len(crowd.Users()))

	// 4. Geolocate.
	report, err := darkcrowd.GeolocateCrowd(crowd.Posts, ref, darkcrowd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("active users after polishing: %d\n", report.ActiveUsers)
	for _, component := range report.Components {
		fmt.Println(" ->", component)
	}
}
