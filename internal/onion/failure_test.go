package onion

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

func TestBridgeClientReachesHiddenService(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 6)
	if _, err := n.AddBridge("secret-bridge"); err != nil {
		t.Fatal(err)
	}
	// Bridges are not in the directory.
	for _, id := range n.Directory().Relays() {
		if id == "secret-bridge" {
			t.Fatal("bridge leaked into the directory")
		}
	}

	svc, err := HostService(n, "bridged-svc", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	go func() {
		ln := svc.Listener()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}(conn)
		}
	}()

	client, err := NewClientWithBridge(n, "censored-user", "secret-bridge")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	conn, err := client.Dial(svc.Onion())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("through the bridge")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("echo = %q", buf)
	}
}

func TestBridgeIsFirstHop(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 5)
	if _, err := n.AddBridge("bridge-1"); err != nil {
		t.Fatal(err)
	}
	if err := n.RegisterExternal("site.example", func(conn net.Conn) {
		defer conn.Close()
		_, _ = io.Copy(conn, conn)
	}); err != nil {
		t.Fatal(err)
	}
	client, err := NewClientWithBridge(n, "user", "bridge-1")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	path, err := client.Path()
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0] != "bridge-1" {
		t.Errorf("path = %v, want bridge first", path)
	}
}

func TestStopRelayBreaksCircuit(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 6)
	n.SetControlTimeout(300 * time.Millisecond)
	if err := n.RegisterExternal("echo.example", func(conn net.Conn) {
		defer conn.Close()
		_, _ = io.Copy(conn, conn)
	}); err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(n, "victim")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	conn, err := client.Dial("echo.example")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	path, err := client.Path()
	if err != nil {
		t.Fatal(err)
	}
	// Kill the middle relay of the established circuit.
	if err := n.StopRelay(path[1]); err != nil {
		t.Fatal(err)
	}
	// The cached circuit is dead, but the client recovers by building a
	// fresh circuit on retry.
	conn2, err := client.Dial("echo.example")
	if err != nil {
		t.Fatalf("dial after relay failure should recover: %v", err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(conn2, buf); err != nil {
		t.Fatal(err)
	}
	newPath, err := client.Path()
	if err != nil {
		t.Fatal(err)
	}
	for _, hop := range newPath {
		if hop == path[1] {
			t.Error("rebuilt circuit reuses the dead relay")
		}
	}
}

func TestClientRecoversFromGuardFailure(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 7)
	n.SetControlTimeout(300 * time.Millisecond)
	if err := n.RegisterExternal("echo.example", func(conn net.Conn) {
		defer conn.Close()
		_, _ = io.Copy(conn, conn)
	}); err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(n, "resilient-user")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	conn, err := client.Dial("echo.example")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	path, err := client.Path()
	if err != nil {
		t.Fatal(err)
	}
	// Kill the guard itself: the client must rotate to a new one.
	if err := n.StopRelay(path[0]); err != nil {
		t.Fatal(err)
	}
	conn2, err := client.Dial("echo.example")
	if err != nil {
		t.Fatalf("dial after guard failure should recover: %v", err)
	}
	defer conn2.Close()
	newPath, err := client.Path()
	if err != nil {
		t.Fatal(err)
	}
	if newPath[0] == path[0] {
		t.Error("client kept the dead guard")
	}
}

func TestStopRelayErrors(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 3)
	if err := n.StopRelay("does-not-exist"); err == nil {
		t.Error("stopping a missing relay should fail")
	}
	if err := n.StopRelay("relay-0"); err != nil {
		t.Fatalf("first stop: %v", err)
	}
	if err := n.StopRelay("relay-0"); err == nil {
		t.Error("double stop should fail")
	}
	if n.Directory().NumRelays() != 2 {
		t.Errorf("roster = %d, want 2", n.Directory().NumRelays())
	}
}

func TestServiceSurvivesNonCriticalRelayLoss(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 10)
	n.SetControlTimeout(2 * time.Second)
	svc, err := HostService(n, "resilient", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	go func() {
		ln := svc.Listener()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}(conn)
		}
	}()

	// Find a relay that is not on any service circuit and not an HSDir,
	// and kill it: new clients must still connect.
	critical := map[string]bool{}
	for _, id := range svc.CircuitRelays() {
		critical[id] = true
	}
	dirs, err := n.Directory().HSDirs(svc.Onion(), hsDirReplicas)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		critical[d] = true
	}
	var sacrificial string
	for _, id := range n.Directory().Relays() {
		if !critical[id] {
			sacrificial = id
			break
		}
	}
	if sacrificial == "" {
		t.Skip("no non-critical relay in this topology")
	}
	if err := n.StopRelay(sacrificial); err != nil {
		t.Fatal(err)
	}

	client, err := NewClient(n, "after-failure")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	conn, err := client.Dial(svc.Onion())
	if err != nil {
		t.Fatalf("dial after non-critical relay loss: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
}

func TestGuardPersistence(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 8)
	if err := n.RegisterExternal("a.example", func(conn net.Conn) {
		defer conn.Close()
		_, _ = io.Copy(conn, conn)
	}); err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(n, "loyal")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	path1, err := client.circuitPath(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		path, err := client.circuitPath(3)
		if err != nil {
			t.Fatal(err)
		}
		if path[0] != path1[0] {
			t.Fatalf("guard changed: %s -> %s", path1[0], path[0])
		}
	}
	// Excluding the guard forces a different entry without forgetting it.
	alt, err := client.circuitPath(3, path1[0])
	if err != nil {
		t.Fatal(err)
	}
	if alt[0] == path1[0] {
		t.Fatal("excluded guard reused")
	}
	again, err := client.circuitPath(3)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != path1[0] {
		t.Fatalf("guard forgotten after exclusion: %s", again[0])
	}
}
