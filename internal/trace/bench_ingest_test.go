package trace

import (
	"bytes"
	"testing"
	"time"
)

// benchDataset builds a mid-sized CSV + snapshot pair once per benchmark
// binary: enough rows that per-byte costs dominate setup noise.
func benchIngestInput(b *testing.B) (csvBytes, snapBytes []byte, posts int) {
	b.Helper()
	var buf bytes.Buffer
	buf.WriteString("user_id,time_rfc3339\n")
	for i := 0; i < 100_000; i++ {
		// 997 users, deterministic spread over ~4 months of 2017.
		u := i * 7919 % 997
		sec := int64(1488368000) + int64(i%9973)*997
		buf.WriteString("user")
		buf.WriteByte(byte('a' + u%26))
		buf.WriteByte(byte('a' + (u/26)%26))
		buf.WriteByte(byte('a' + u/676))
		buf.WriteByte(',')
		buf.Write(appendRFC3339(nil, time.Unix(sec, 0).UTC()))
		buf.WriteByte('\n')
	}
	csvBytes = buf.Bytes()
	ds, _, err := ReadCSVOpts("bench", bytes.NewReader(csvBytes), ReadCSVOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var snap bytes.Buffer
	if err := ds.WriteSnapshot(&snap); err != nil {
		b.Fatal(err)
	}
	return csvBytes, snap.Bytes(), ds.NumPosts()
}

func BenchmarkSnapshotDecode(b *testing.B) {
	_, snapBytes, posts := benchIngestInput(b)
	b.SetBytes(int64(len(snapBytes)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := decodeSnapshot(snapBytes)
		if err != nil {
			b.Fatal(err)
		}
		if ds.NumPosts() != posts {
			b.Fatal("short decode")
		}
	}
}

func BenchmarkParallelRead(b *testing.B) {
	csvBytes, _, posts := benchIngestInput(b)
	b.SetBytes(int64(len(csvBytes)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, _, err := ReadCSVParallel("bench", csvBytes, ReadCSVOptions{}, 4)
		if err != nil {
			b.Fatal(err)
		}
		if ds.NumPosts() != posts {
			b.Fatal("short read")
		}
	}
}
